//! Runtime values.
//!
//! Every bulk value (array, table, matrix, …) carries both its materialized
//! data — kept small enough to compute on a laptop — and a *logical* size
//! representing the paper-scale dataset it stands for. Builtins compute
//! real results on the materialized data and report costs analytically from
//! the logical sizes, so quantities that depend on the data (selectivity,
//! sparsity, tree depth) remain genuinely data-driven while volumes match
//! Table I of the paper.

use crate::error::{LangError, Result};
use crate::forest::Forest;
use crate::matrix::{Csr, Matrix};
use crate::table::Table;
use csd_sim::wire::Encoding;
use std::fmt;
use std::sync::Arc;

/// Elements per independently-encoded chunk of an [`EncodedVal`].
///
/// Matches the parallel engine's chunk grid, so decode parallelizes over
/// the same deterministic chunk boundaries every other kernel uses, and a
/// journaled run replays each chunk's bytes exactly.
pub const ENCODED_CHUNK_ELEMS: usize = 4096;

/// A bulk numeric value still in its on-storage wire format.
///
/// The materialized sample is held as independently-encoded
/// [`ENCODED_CHUNK_ELEMS`]-element chunks (so decode can run under the
/// chunk grid), while `logical_len` and `encoded_logical_bytes` describe
/// the paper-scale dataset: the logical byte volume is the materialized
/// compression ratio extrapolated to the logical length, so Eq. 1 prices
/// moving the *encoded* stream, not the decoded array it stands for.
#[derive(Debug, Clone)]
pub struct EncodedVal {
    encoding: Encoding,
    chunks: Arc<Vec<Vec<u8>>>,
    actual_len: usize,
    logical_len: u64,
    encoded_logical_bytes: u64,
}

impl PartialEq for EncodedVal {
    fn eq(&self, other: &Self) -> bool {
        self.encoding == other.encoding
            && self.logical_len == other.logical_len
            && self.actual_len == other.actual_len
            && (Arc::ptr_eq(&self.chunks, &other.chunks) || self.chunks == other.chunks)
    }
}

impl EncodedVal {
    /// Encodes a materialized sample standing for `logical_len`
    /// paper-scale elements.
    ///
    /// # Panics
    ///
    /// Panics if `logical_len` is smaller than the materialized length.
    #[must_use]
    pub fn from_f64s(encoding: Encoding, data: &[f64], logical_len: u64) -> Self {
        assert!(
            logical_len >= data.len() as u64,
            "logical length must cover the materialized data"
        );
        let chunks: Vec<Vec<u8>> = data
            .chunks(ENCODED_CHUNK_ELEMS)
            .map(|c| encoding.encode(c))
            .collect();
        let actual_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        // Extrapolate the sample's real compression ratio to paper scale.
        let encoded_logical_bytes = if data.is_empty() {
            0
        } else {
            let ratio = logical_len as f64 / data.len() as f64;
            (actual_bytes as f64 * ratio).round() as u64
        };
        EncodedVal {
            encoding,
            chunks: Arc::new(chunks),
            actual_len: data.len(),
            logical_len,
            encoded_logical_bytes,
        }
    }

    /// Reassembles an encoded value from serialized parts (warm-start
    /// persistence). The chunks must have been produced by
    /// `encoding.encode` over [`ENCODED_CHUNK_ELEMS`]-element slices;
    /// byte-level round trips are exact because encoding is
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `logical_len` is smaller than `actual_len`.
    #[must_use]
    pub fn from_parts(
        encoding: Encoding,
        chunks: Vec<Vec<u8>>,
        actual_len: usize,
        logical_len: u64,
        encoded_logical_bytes: u64,
    ) -> Self {
        assert!(
            logical_len >= actual_len as u64,
            "logical length must cover the materialized data"
        );
        EncodedVal {
            encoding,
            chunks: Arc::new(chunks),
            actual_len,
            logical_len,
            encoded_logical_bytes,
        }
    }

    /// The wire-format descriptor.
    #[must_use]
    pub fn encoding(&self) -> &Encoding {
        &self.encoding
    }

    /// The encoded chunks (each covers [`ENCODED_CHUNK_ELEMS`] decoded
    /// elements, except a shorter tail).
    #[must_use]
    pub fn chunks(&self) -> &[Vec<u8>] {
        &self.chunks
    }

    /// Materialized (decoded) element count.
    #[must_use]
    pub fn actual_len(&self) -> usize {
        self.actual_len
    }

    /// Logical (paper-scale) decoded element count.
    #[must_use]
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// Paper-scale size of the *encoded* stream in bytes.
    #[must_use]
    pub fn encoded_logical_bytes(&self) -> u64 {
        self.encoded_logical_bytes
    }

    /// Materialized size of the encoded stream in bytes.
    #[must_use]
    pub fn encoded_actual_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }

    /// Decodes every chunk serially.
    ///
    /// # Errors
    ///
    /// Returns a corruption description from the wire layer.
    pub fn decode_all(&self) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.actual_len);
        for chunk in self.chunks.iter() {
            out.extend(self.encoding.decode(chunk).map_err(LangError::type_error)?);
        }
        Ok(out)
    }
}

/// A 1-D array of `f64` with a logical length.
#[derive(Debug, Clone)]
pub struct ArrayVal {
    data: Arc<Vec<f64>>,
    logical_len: u64,
}

impl PartialEq for ArrayVal {
    fn eq(&self, other: &Self) -> bool {
        self.logical_len == other.logical_len
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl ArrayVal {
    /// Builds an array whose logical length equals its materialized length.
    #[must_use]
    pub fn new(data: Vec<f64>) -> Self {
        let logical_len = data.len() as u64;
        ArrayVal {
            data: Arc::new(data),
            logical_len,
        }
    }

    /// Builds an array standing for `logical_len` paper-scale elements.
    ///
    /// # Panics
    ///
    /// Panics if `logical_len` is smaller than the materialized length.
    #[must_use]
    pub fn with_logical(data: Vec<f64>, logical_len: u64) -> Self {
        assert!(
            logical_len >= data.len() as u64,
            "logical length must cover the materialized data"
        );
        ArrayVal {
            data: Arc::new(data),
            logical_len,
        }
    }

    /// The materialized data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Materialized length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the materialized data is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Logical (paper-scale) length.
    #[must_use]
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// Ratio `logical / materialized`.
    #[must_use]
    pub fn scale_ratio(&self) -> f64 {
        if self.data.is_empty() {
            1.0
        } else {
            self.logical_len as f64 / self.data.len() as f64
        }
    }
}

/// A 1-D boolean mask with a logical length.
#[derive(Debug, Clone)]
pub struct BoolArrayVal {
    data: Arc<Vec<bool>>,
    logical_len: u64,
}

impl PartialEq for BoolArrayVal {
    fn eq(&self, other: &Self) -> bool {
        self.logical_len == other.logical_len
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl BoolArrayVal {
    /// Builds a mask whose logical length equals its materialized length.
    #[must_use]
    pub fn new(data: Vec<bool>) -> Self {
        let logical_len = data.len() as u64;
        BoolArrayVal {
            data: Arc::new(data),
            logical_len,
        }
    }

    /// Builds a mask standing for `logical_len` paper-scale elements.
    ///
    /// # Panics
    ///
    /// Panics if `logical_len` is smaller than the materialized length.
    #[must_use]
    pub fn with_logical(data: Vec<bool>, logical_len: u64) -> Self {
        assert!(
            logical_len >= data.len() as u64,
            "logical length must cover the materialized data"
        );
        BoolArrayVal {
            data: Arc::new(data),
            logical_len,
        }
    }

    /// The materialized mask.
    #[must_use]
    pub fn data(&self) -> &[bool] {
        &self.data
    }

    /// Materialized length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the materialized mask is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Logical length.
    #[must_use]
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// Fraction of `true` entries in the materialized mask.
    #[must_use]
    pub fn selectivity(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().filter(|b| **b).count() as f64 / self.data.len() as f64
        }
    }
}

/// Any ALang runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Scalar number.
    Num(f64),
    /// Scalar boolean.
    Bool(bool),
    /// String (used for column names and dataset names).
    Str(String),
    /// Numeric array.
    Array(ArrayVal),
    /// Boolean mask.
    BoolArray(BoolArrayVal),
    /// Columnar table.
    Table(Table),
    /// Dense matrix.
    Matrix(Matrix),
    /// Sparse CSR matrix.
    Csr(Csr),
    /// Decision-tree forest model.
    Forest(Forest),
    /// Bulk numeric data still in its on-storage wire format.
    Encoded(EncodedVal),
}

impl Value {
    /// Short type name for diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "num",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Array(_) => "array",
            Value::BoolArray(_) => "boolarray",
            Value::Table(_) => "table",
            Value::Matrix(_) => "matrix",
            Value::Csr(_) => "csr",
            Value::Forest(_) => "forest",
            Value::Encoded(_) => "encoded",
        }
    }

    /// Whether this is a bulk value whose movement costs bandwidth.
    #[must_use]
    pub fn is_bulk(&self) -> bool {
        !matches!(self, Value::Num(_) | Value::Bool(_) | Value::Str(_))
    }

    /// Paper-scale data volume in bytes.
    #[must_use]
    pub fn virtual_bytes(&self) -> u64 {
        match self {
            Value::Num(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len() as u64,
            Value::Array(a) => a.logical_len() * 8,
            Value::BoolArray(m) => m.logical_len(),
            Value::Table(t) => t.virtual_bytes(),
            Value::Matrix(m) => m.virtual_bytes(),
            Value::Csr(c) => c.virtual_bytes(),
            Value::Forest(f) => f.virtual_bytes(),
            // Moving an encoded value moves the compressed stream — this
            // asymmetry against the decoded Array is exactly what makes
            // decode placement a profitable axis for Eq. 1.
            Value::Encoded(e) => e.encoded_logical_bytes(),
        }
    }

    /// Logical element count (rows for tables, elements for matrices and
    /// arrays, nodes scored for forests, 1 for scalars).
    #[must_use]
    pub fn logical_elems(&self) -> u64 {
        match self {
            Value::Num(_) | Value::Bool(_) | Value::Str(_) => 1,
            Value::Array(a) => a.logical_len(),
            Value::BoolArray(m) => m.logical_len(),
            Value::Table(t) => t.logical_rows(),
            Value::Matrix(m) => m.logical_rows() * m.logical_cols(),
            Value::Csr(c) => c.logical_nnz(),
            Value::Forest(f) => f.node_count() as u64,
            Value::Encoded(e) => e.logical_len(),
        }
    }

    /// Extracts a scalar number.
    ///
    /// # Errors
    ///
    /// Returns a type error for non-numbers.
    pub fn as_num(&self) -> Result<f64> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(type_err("num", other)),
        }
    }

    /// Extracts a scalar boolean.
    ///
    /// # Errors
    ///
    /// Returns a type error for non-booleans.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }

    /// Extracts a string.
    ///
    /// # Errors
    ///
    /// Returns a type error for non-strings.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_err("str", other)),
        }
    }

    /// Extracts a numeric array.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_array(&self) -> Result<&ArrayVal> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(type_err("array", other)),
        }
    }

    /// Extracts a boolean mask.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_bool_array(&self) -> Result<&BoolArrayVal> {
        match self {
            Value::BoolArray(m) => Ok(m),
            other => Err(type_err("boolarray", other)),
        }
    }

    /// Extracts a table.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_table(&self) -> Result<&Table> {
        match self {
            Value::Table(t) => Ok(t),
            other => Err(type_err("table", other)),
        }
    }

    /// Extracts a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_matrix(&self) -> Result<&Matrix> {
        match self {
            Value::Matrix(m) => Ok(m),
            other => Err(type_err("matrix", other)),
        }
    }

    /// Extracts a CSR matrix.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_csr(&self) -> Result<&Csr> {
        match self {
            Value::Csr(c) => Ok(c),
            other => Err(type_err("csr", other)),
        }
    }

    /// Extracts a forest model.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_forest(&self) -> Result<&Forest> {
        match self {
            Value::Forest(f) => Ok(f),
            other => Err(type_err("forest", other)),
        }
    }

    /// Extracts a wire-format encoded value.
    ///
    /// # Errors
    ///
    /// Returns a type error for other values.
    pub fn as_encoded(&self) -> Result<&EncodedVal> {
        match self {
            Value::Encoded(e) => Ok(e),
            other => Err(type_err("encoded", other)),
        }
    }
}

fn type_err(wanted: &str, got: &Value) -> LangError {
    LangError::type_error(format!("expected {wanted}, got {}", got.type_name()))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Array(a) => {
                write!(f, "array[{} (logical {})]", a.len(), a.logical_len())
            }
            Value::BoolArray(m) => {
                write!(f, "mask[{} (logical {})]", m.len(), m.logical_len())
            }
            Value::Table(t) => write!(f, "{t}"),
            Value::Matrix(m) => write!(f, "{m}"),
            Value::Csr(c) => write!(f, "{c}"),
            Value::Forest(fr) => write!(f, "{fr}"),
            Value::Encoded(e) => write!(
                f,
                "encoded[{}B for {} elems (logical {})]",
                e.encoded_actual_bytes(),
                e.actual_len(),
                e.logical_len()
            ),
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Array(ArrayVal::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_volumes() {
        assert_eq!(Value::Num(1.0).virtual_bytes(), 8);
        assert_eq!(Value::Bool(true).virtual_bytes(), 1);
        assert_eq!(Value::Str("abc".into()).virtual_bytes(), 3);
        assert!(!Value::Num(1.0).is_bulk());
    }

    #[test]
    fn array_logical_scaling() {
        let a = ArrayVal::with_logical(vec![1.0, 2.0], 2000);
        assert_eq!(a.logical_len(), 2000);
        assert!((a.scale_ratio() - 1000.0).abs() < 1e-12);
        let v = Value::Array(a);
        assert_eq!(v.virtual_bytes(), 16_000);
        assert!(v.is_bulk());
    }

    #[test]
    fn array_eq_shares_and_compares() {
        // Clones share the buffer: equal via the pointer fast path.
        let a = ArrayVal::with_logical(vec![1.0, 2.0], 2000);
        assert_eq!(a, a.clone());
        // Same contents in distinct buffers still compare equal.
        assert_eq!(a, ArrayVal::with_logical(vec![1.0, 2.0], 2000));
        // Same buffer contents but different logical length differ.
        assert_ne!(a, ArrayVal::with_logical(vec![1.0, 2.0], 3000));
        assert_ne!(a, ArrayVal::with_logical(vec![1.0, 3.0], 2000));
        let m = BoolArrayVal::with_logical(vec![true, false], 2000);
        assert_eq!(m, m.clone());
        assert_eq!(m, BoolArrayVal::with_logical(vec![true, false], 2000));
        assert_ne!(m, BoolArrayVal::with_logical(vec![true, true], 2000));
        assert_ne!(m, BoolArrayVal::with_logical(vec![true, false], 3000));
    }

    #[test]
    #[should_panic(expected = "logical length")]
    fn logical_shorter_than_actual_panics() {
        let _ = ArrayVal::with_logical(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn mask_selectivity() {
        let m = BoolArrayVal::new(vec![true, false, true, true]);
        assert!((m.selectivity() - 0.75).abs() < 1e-12);
        assert_eq!(Value::BoolArray(m).virtual_bytes(), 4);
    }

    #[test]
    fn accessors_enforce_types() {
        let v = Value::from(3.5);
        assert_eq!(v.as_num().expect("num"), 3.5);
        assert!(v.as_array().is_err());
        assert!(v.as_table().is_err());
        let msg = format!("{}", Value::from(true).as_num().unwrap_err());
        assert!(msg.contains("expected num"));
        assert!(msg.contains("bool"));
    }

    #[test]
    fn encoded_values_extrapolate_compressed_bytes() {
        let data: Vec<f64> = (0..6000).map(|i| f64::from(i % 97)).collect();
        let e = EncodedVal::from_f64s(Encoding::gzip_shuffled(), &data, 6_000_000);
        // 6000 elems at 4096/chunk -> 2 chunks.
        assert_eq!(e.chunks().len(), 2);
        assert_eq!(e.actual_len(), 6000);
        let v = Value::Encoded(e.clone());
        assert!(v.is_bulk());
        assert_eq!(v.logical_elems(), 6_000_000);
        // Compressible data: encoded logical bytes are far below the
        // 8 B/elem a decoded Array would report, and the extrapolation
        // preserves the materialized ratio.
        assert!(v.virtual_bytes() < 6_000_000 * 8 / 4);
        let ratio = e.encoded_logical_bytes() as f64 / e.encoded_actual_bytes() as f64;
        assert!((ratio - 1000.0).abs() < 1.0);
        // Decode returns the original data.
        assert_eq!(e.decode_all().expect("decodes"), data);
        assert_eq!(v.as_encoded().expect("encoded").actual_len(), 6000);
        assert!(Value::Num(1.0).as_encoded().is_err());
        // Equality: clone (shared chunks) and a re-encode both compare
        // equal; a different encoding does not.
        assert_eq!(e, e.clone());
        assert_eq!(
            e,
            EncodedVal::from_f64s(Encoding::gzip_shuffled(), &data, 6_000_000)
        );
        assert_ne!(e, EncodedVal::from_f64s(Encoding::raw(), &data, 6_000_000));
    }

    #[test]
    fn display_nonempty_for_all_variants() {
        let vals = [
            Value::Num(1.0),
            Value::Bool(false),
            Value::Str("s".into()),
            Value::from(vec![1.0, 2.0]),
            Value::BoolArray(BoolArrayVal::new(vec![true])),
        ];
        for v in &vals {
            assert!(!format!("{v}").is_empty());
            assert!(!v.type_name().is_empty());
        }
    }
}
