//! Recursive-descent parser for ALang.
//!
//! Grammar (one statement per line):
//!
//! ```text
//! line    := IDENT '=' or_expr
//! or_expr := and_expr ( 'or' and_expr )*
//! and_expr:= cmp_expr ( 'and' cmp_expr )*
//! cmp_expr:= add_expr ( ('<'|'<='|'>'|'>='|'=='|'!=') add_expr )?
//! add_expr:= mul_expr ( ('+'|'-') mul_expr )*
//! mul_expr:= unary ( ('*'|'/') unary )*
//! unary   := ('-'|'not') unary | primary
//! primary := NUM | STR | IDENT | IDENT '(' args ')' | '(' or_expr ')'
//! ```

use crate::ast::{BinOp, Expr, Line, Program, UnOp};
use crate::error::{LangError, Result};
use crate::token::{lex_line, Token};

/// Parses a full ALang source text into a [`Program`].
///
/// Blank lines and comment-only lines are skipped; the remaining lines are
/// numbered consecutively from zero (those indices are the SESE region ids
/// used everywhere else).
///
/// # Errors
///
/// Returns a [`LangError::Lex`] or [`LangError::Parse`] pinpointing the
/// offending 1-based source line.
///
/// ```
/// let p = alang::parser::parse("x = 1 + 2\ny = x * 3\n")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), alang::error::LangError>(())
/// ```
pub fn parse(source: &str) -> Result<Program> {
    let mut lines = Vec::new();
    for (src_no, raw) in source.lines().enumerate() {
        let tokens = lex_line(raw, src_no + 1)?;
        if tokens.is_empty() {
            continue;
        }
        let mut p = Parser {
            tokens,
            pos: 0,
            line_no: src_no + 1,
        };
        let line = p.parse_line(lines.len(), raw.trim().to_owned())?;
        lines.push(line);
    }
    Ok(Program::from_lines(lines))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    line_no: usize,
}

impl Parser {
    fn parse_line(&mut self, index: usize, source: String) -> Result<Line> {
        let target = match self.next() {
            Some(Token::Ident(name)) => name,
            other => return Err(self.unexpected(other.as_ref(), "a variable name")),
        };
        match self.next() {
            Some(Token::Assign) => {}
            other => return Err(self.unexpected(other.as_ref(), "`=`")),
        }
        let expr = self.or_expr()?;
        if let Some(tok) = self.peek() {
            let tok = tok.clone();
            return Err(self.unexpected(Some(&tok), "end of line"));
        }
        Ok(Line::new(index, target, expr, source))
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat(&Token::Not) {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Num(n)) => Ok(Expr::Num(n)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Ident(name)) => {
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.or_expr()?);
                            if self.eat(&Token::Comma) {
                                continue;
                            }
                            match self.next() {
                                Some(Token::RParen) => break,
                                other => return Err(self.unexpected(other.as_ref(), "`,` or `)`")),
                            }
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(Token::LParen) => {
                let e = self.or_expr()?;
                match self.next() {
                    Some(Token::RParen) => Ok(e),
                    other => Err(self.unexpected(other.as_ref(), "`)`")),
                }
            }
            other => Err(self.unexpected(other.as_ref(), "an expression")),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn unexpected(&self, got: Option<&Token>, wanted: &str) -> LangError {
        let got = got.map_or_else(|| "end of line".to_owned(), Token::describe);
        LangError::Parse {
            line: self.line_no,
            message: format!("expected {wanted}, found {got}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr};

    #[test]
    fn parses_precedence() {
        let p = parse("x = 1 + 2 * 3\n").expect("parse");
        match &p.lines()[0].expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn parses_parentheses_override() {
        let p = parse("x = (1 + 2) * 3\n").expect("parse");
        assert!(matches!(
            p.lines()[0].expr,
            Expr::Binary { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn parses_nested_calls() {
        let p = parse("s = sum(mul(a, b))\n").expect("parse");
        match &p.lines()[0].expr {
            Expr::Call { name, args } => {
                assert_eq!(name, "sum");
                assert!(matches!(&args[0], Expr::Call { name, .. } if name == "mul"));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn parses_zero_arg_call() {
        let p = parse("x = now()\n").expect("parse");
        assert!(matches!(&p.lines()[0].expr, Expr::Call { args, .. } if args.is_empty()));
    }

    #[test]
    fn parses_logical_chain() {
        let p = parse("m = a < 1 and b >= 2 or not c\n").expect("parse");
        assert!(matches!(
            p.lines()[0].expr,
            Expr::Binary { op: BinOp::Or, .. }
        ));
    }

    #[test]
    fn parses_unary_minus() {
        let p = parse("x = -y * 2\n").expect("parse");
        assert!(matches!(
            p.lines()[0].expr,
            Expr::Binary { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn blank_and_comment_lines_skipped() {
        let p = parse("\n# header\nx = 1\n\ny = x\n").expect("parse");
        assert_eq!(p.len(), 2);
        assert_eq!(p.lines()[0].index, 0);
        assert_eq!(p.lines()[1].index, 1);
    }

    #[test]
    fn missing_assign_is_parse_error() {
        let e = parse("x 1\n").unwrap_err();
        assert!(matches!(e, LangError::Parse { line: 1, .. }));
    }

    #[test]
    fn trailing_garbage_is_parse_error() {
        assert!(parse("x = 1 2\n").is_err());
    }

    #[test]
    fn unclosed_paren_is_parse_error() {
        assert!(parse("x = f(1, 2\n").is_err());
    }

    #[test]
    fn error_reports_true_source_line() {
        let e = parse("a = 1\n\n# comment\nb = +\n").unwrap_err();
        match e {
            LangError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
