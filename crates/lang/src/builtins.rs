//! The builtin function library.
//!
//! Builtins play the role NumPy / native extension modules play for Python:
//! bulk kernels invoked from interpreted code across a library boundary.
//! Each builtin computes a *real* result on the materialized data and
//! reports an *analytic* operation count at logical (paper) scale, plus any
//! stored bytes it streamed.
//!
//! Per-element operation weights are crude but consistent; what matters for
//! the reproduction is their relative magnitudes (a transcendental costs
//! more than an add, a tree traversal more than a compare) and that data
//! volumes are exact.

use crate::error::{LangError, Result};
use crate::matrix::Matrix;
use crate::par::ParEngine;
use crate::table::{Column, Table};
use crate::value::{ArrayVal, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, LazyLock};

/// Per-element operation weights used by the analytic cost reports.
pub mod weights {
    /// Cheap per-element view/convert (e.g. `col`).
    pub const VIEW: u64 = 1;
    /// Elementwise arithmetic.
    pub const ELEM: u64 = 4;
    /// Reduction step (sum/min/max/mean).
    pub const REDUCE: u64 = 2;
    /// Gather step per row per column in `filter`.
    pub const GATHER: u64 = 2;
    /// Comparison-sort constant (× n log₂ n).
    pub const SORT: u64 = 2;
    /// Hash-aggregate per row.
    pub const GROUP: u64 = 8;
    /// Multiply-add in dense GEMM.
    pub const MADD: u64 = 2;
    /// Per stored non-zero in SpMV.
    pub const SPMV: u64 = 4;
    /// Per dense element scanned by CSR conversion.
    pub const TO_CSR: u64 = 3;
    /// Per edge in a PageRank step.
    pub const PR_EDGE: u64 = 6;
    /// Per node in a PageRank step.
    pub const PR_NODE: u64 = 2;
    /// Per point-centroid-dimension term in k-means.
    pub const KMEANS: u64 = 3;
    /// Per tree node visited during forest scoring.
    pub const TREE_NODE: u64 = 6;
    /// Transcendental (`exp`, `log`).
    pub const TRANSCENDENTAL: u64 = 20;
    /// Square root.
    pub const SQRT: u64 = 10;
    /// Error function.
    pub const ERF: u64 = 30;
    /// Elementwise select (`where`, `select`).
    pub const SELECT: u64 = 2;
    /// Per *encoded* byte of DEFLATE stream inflated by `decode`
    /// (Huffman walk + LZ77 copy).
    pub const INFLATE_BYTE: u64 = 6;
    /// Per *decoded* byte moved by the un-shuffle transpose.
    pub const SHUFFLE_BYTE: u64 = 1;
    /// Per element of `decode` byte-assembly work (bit-pattern load;
    /// charged again for a byte swap and again for a fill-value check).
    pub const DECODE_ELEM: u64 = 1;
}

/// Named stored datasets visible to `scan`.
///
/// The workload generators populate one of these at the desired scale; the
/// sampling phase populates smaller ones at the paper's four scale factors.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    datasets: BTreeMap<String, Value>,
}

impl Storage {
    /// An empty storage.
    #[must_use]
    pub fn new() -> Self {
        Storage::default()
    }

    /// Adds (or replaces) a dataset.
    pub fn insert(&mut self, name: impl Into<String>, value: Value) {
        self.datasets.insert(name.into(), value);
    }

    /// Looks up a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::UnknownDataset`] if absent.
    pub fn get(&self, name: &str) -> Result<&Value> {
        self.datasets
            .get(name)
            .ok_or_else(|| LangError::UnknownDataset {
                name: name.to_owned(),
            })
    }

    /// Names of all datasets.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.datasets.keys().map(String::as_str)
    }

    /// Total virtual bytes across all datasets.
    #[must_use]
    pub fn total_virtual_bytes(&self) -> u64 {
        self.datasets.values().map(Value::virtual_bytes).sum()
    }
}

/// Result of a builtin call: the produced value plus its analytic cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltinOutput {
    /// The produced value.
    pub value: Value,
    /// Compute operations at logical scale.
    pub ops: u64,
    /// Bytes streamed from storage (non-zero only for `scan`).
    pub storage_bytes: u64,
}

impl BuiltinOutput {
    fn new(value: Value, ops: u64) -> Self {
        BuiltinOutput {
            value,
            ops,
            storage_bytes: 0,
        }
    }
}

/// All builtin names, for diagnostics and the copy-elimination type tables.
pub const BUILTIN_NAMES: &[&str] = &[
    "scan",
    "col",
    "filter",
    "select",
    "len",
    "sum",
    "mean",
    "minv",
    "maxv",
    "count",
    "exp",
    "log",
    "sqrt",
    "erf",
    "abs",
    "sort",
    "dot",
    "where",
    "group_sum",
    "matmul",
    "gemm_batch",
    "to_csr",
    "spmv",
    "pagerank_step",
    "kmeans_assign",
    "kmeans_update",
    "forest_score",
    "gather",
    "frob",
    "gram",
    "scan_raw",
    "decode",
];

/// Execution context handed to every kernel: the stored datasets plus the
/// data-parallel engine that decides chunked execution.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx<'a> {
    /// Named stored datasets visible to `scan`.
    pub storage: &'a Storage,
    /// The chunked-execution engine (serial by default).
    pub par: &'a ParEngine,
}

impl<'a> KernelCtx<'a> {
    /// A context running `storage` with the shared serial engine.
    #[must_use]
    pub fn serial(storage: &'a Storage) -> Self {
        KernelCtx {
            storage,
            par: ParEngine::serial_ref(),
        }
    }
}

/// A builtin kernel: already-evaluated arguments plus execution context in,
/// value and analytic cost out. Function pointers (not trait objects) so the
/// lowered VM dispatches with one indirect call and zero allocation.
pub type KernelFn = for<'a> fn(&[Value], &KernelCtx<'a>) -> Result<BuiltinOutput>;

struct Kernel {
    name: &'static str,
    func: KernelFn,
}

/// Dispatch table, index-aligned with [`BUILTIN_NAMES`] (asserted by a test).
static KERNELS: &[Kernel] = &[
    Kernel {
        name: "scan",
        func: k_scan,
    },
    Kernel {
        name: "col",
        func: k_col,
    },
    Kernel {
        name: "filter",
        func: k_filter,
    },
    Kernel {
        name: "select",
        func: k_select,
    },
    Kernel {
        name: "len",
        func: k_len,
    },
    Kernel {
        name: "sum",
        func: k_sum,
    },
    Kernel {
        name: "mean",
        func: k_mean,
    },
    Kernel {
        name: "minv",
        func: k_minv,
    },
    Kernel {
        name: "maxv",
        func: k_maxv,
    },
    Kernel {
        name: "count",
        func: k_count,
    },
    Kernel {
        name: "exp",
        func: k_exp,
    },
    Kernel {
        name: "log",
        func: k_log,
    },
    Kernel {
        name: "sqrt",
        func: k_sqrt,
    },
    Kernel {
        name: "erf",
        func: k_erf,
    },
    Kernel {
        name: "abs",
        func: k_abs,
    },
    Kernel {
        name: "sort",
        func: k_sort,
    },
    Kernel {
        name: "dot",
        func: k_dot,
    },
    Kernel {
        name: "where",
        func: k_where,
    },
    Kernel {
        name: "group_sum",
        func: group_sum,
    },
    Kernel {
        name: "matmul",
        func: k_matmul,
    },
    Kernel {
        name: "gemm_batch",
        func: gemm_batch,
    },
    Kernel {
        name: "to_csr",
        func: k_to_csr,
    },
    Kernel {
        name: "spmv",
        func: k_spmv,
    },
    Kernel {
        name: "pagerank_step",
        func: k_pagerank_step,
    },
    Kernel {
        name: "kmeans_assign",
        func: kmeans_assign,
    },
    Kernel {
        name: "kmeans_update",
        func: kmeans_update,
    },
    Kernel {
        name: "forest_score",
        func: forest_score,
    },
    Kernel {
        name: "gather",
        func: k_gather,
    },
    Kernel {
        name: "frob",
        func: k_frob,
    },
    Kernel {
        name: "gram",
        func: k_gram,
    },
    Kernel {
        name: "scan_raw",
        func: k_scan_raw,
    },
    Kernel {
        name: "decode",
        func: k_decode,
    },
];

/// Dense identifier of a builtin kernel: an index into the dispatch table,
/// resolved once at lower time so execution never re-matches name strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(u16);

impl KernelId {
    /// The kernel's surface name.
    #[must_use]
    pub fn name(self) -> &'static str {
        KERNELS[self.0 as usize].name
    }

    /// Invokes the kernel on already-evaluated arguments with the shared
    /// serial engine (compatibility path; the evaluators use
    /// [`Self::invoke_in`] with their own engine).
    ///
    /// # Errors
    ///
    /// Arity, type, and kernel-specific shape errors, exactly as
    /// [`call`] with the same name would produce.
    pub fn invoke(self, args: &[Value], storage: &Storage) -> Result<BuiltinOutput> {
        self.invoke_in(args, &KernelCtx::serial(storage))
    }

    /// Invokes the kernel in an explicit execution context.
    ///
    /// # Errors
    ///
    /// Same surface as [`Self::invoke`].
    pub fn invoke_in(self, args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
        (KERNELS[self.0 as usize].func)(args, ctx)
    }

    /// Whether calls to this kernel charge an output-copy to the cost model
    /// (the two scan forms are the exceptions: they stream from storage
    /// instead).
    #[must_use]
    pub fn charges_copy(self) -> bool {
        self.0 != SCAN_INDEX && self.0 != SCAN_RAW_INDEX
    }
}

/// Index of `scan` in [`KERNELS`] (asserted by the alignment test).
const SCAN_INDEX: u16 = 0;

/// Index of `scan_raw` in [`KERNELS`] (asserted by the alignment test).
const SCAN_RAW_INDEX: u16 = 30;

/// Kernel names sorted for binary-search resolution, each carrying its
/// index into the (insertion-ordered) dispatch table.
static SORTED_KERNELS: LazyLock<Vec<(&'static str, u16)>> = LazyLock::new(|| {
    let mut sorted: Vec<(&'static str, u16)> = KERNELS
        .iter()
        .enumerate()
        .map(|(i, k)| (k.name, i as u16))
        .collect();
    sorted.sort_unstable_by_key(|(name, _)| *name);
    sorted
});

/// Resolves a builtin name to its dense kernel id, if registered.
/// Binary search over a precomputed sorted table, not a linear scan.
#[must_use]
pub fn kernel_id(name: &str) -> Option<KernelId> {
    let sorted = &*SORTED_KERNELS;
    sorted
        .binary_search_by_key(&name, |(n, _)| n)
        .ok()
        .map(|pos| KernelId(sorted[pos].1))
}

/// Whether `name` is a registered builtin.
#[must_use]
pub fn is_builtin(name: &str) -> bool {
    kernel_id(name).is_some()
}

/// Invokes builtin `name` on already-evaluated `args`.
///
/// # Errors
///
/// Returns [`LangError::UnknownFunction`]-shaped errors via the caller (this
/// function returns [`LangError::Runtime`] for unknown names), arity errors,
/// type errors, and any kernel-specific shape errors.
pub fn call(name: &str, args: &[Value], storage: &Storage) -> Result<BuiltinOutput> {
    call_in(name, args, &KernelCtx::serial(storage))
}

/// Invokes builtin `name` in an explicit execution context.
///
/// # Errors
///
/// Same surface as [`call`].
pub fn call_in(name: &str, args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    match kernel_id(name) {
        Some(id) => id.invoke_in(args, ctx),
        None => Err(LangError::runtime(format!("`{name}` is not a builtin"))),
    }
}

fn k_scan(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a] = expect_args::<1>("scan", args)?;
    let name = a.as_str()?;
    let value = ctx.storage.get(name)?.clone();
    if matches!(value, Value::Encoded(_)) {
        return Err(LangError::type_error(format!(
            "scan: dataset `{name}` is wire-encoded; use scan_raw + decode"
        )));
    }
    let bytes = value.virtual_bytes();
    Ok(BuiltinOutput {
        value,
        ops: 0,
        storage_bytes: bytes,
    })
}

fn k_scan_raw(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    // Reads a dataset *without* decoding: the result is the encoded byte
    // stream, so only `Encoding::encoded_logical_bytes` move off flash
    // and the decode stage becomes a separately placeable line.
    let [a] = expect_args::<1>("scan_raw", args)?;
    let name = a.as_str()?;
    let value = ctx.storage.get(name)?.clone();
    if !matches!(value, Value::Encoded(_)) {
        return Err(LangError::type_error(format!(
            "scan_raw: dataset `{name}` is not wire-encoded; use scan"
        )));
    }
    let bytes = value.virtual_bytes();
    Ok(BuiltinOutput {
        value,
        ops: 0,
        storage_bytes: bytes,
    })
}

fn k_decode(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    use csd_sim::wire::Codec;

    let [a] = expect_args::<1>("decode", args)?;
    let e = a.as_encoded()?;
    let encoding = *e.encoding();
    let chunks = e.chunks();
    // One encoded chunk per grid chunk: decode parallelizes over exactly
    // the deterministic ENCODED_CHUNK_ELEMS boundaries the value was
    // encoded on, and decoding is exact, so chunk-ordered concat is
    // bit-identical to the serial loop at any thread count.
    let decode_range = |range: std::ops::Range<usize>| -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(range.len() * crate::value::ENCODED_CHUNK_ELEMS);
        for chunk in &chunks[range] {
            out.extend(encoding.decode(chunk).map_err(LangError::type_error)?);
        }
        Ok(out)
    };
    let data: Vec<f64> =
        match ctx
            .par
            .map_chunks(chunks.len(), crate::value::ENCODED_CHUNK_ELEMS, |_, r| {
                decode_range(r)
            }) {
            Some(parts) => {
                let mut data = Vec::with_capacity(e.actual_len());
                for part in parts {
                    data.extend(part?);
                }
                data
            }
            None => decode_range(0..chunks.len())?,
        };
    let logical = e.logical_len();
    // Analytic cost per feature actually present in the encoding: the
    // inflate walk is priced per *encoded* byte, the un-shuffle per
    // decoded byte, byte swap and fill check per element.
    let mut ops = logical * weights::DECODE_ELEM;
    if matches!(encoding.codec, Codec::Gzip | Codec::Zlib) {
        ops += e.encoded_logical_bytes() * weights::INFLATE_BYTE;
    }
    if encoding.shuffle {
        ops += logical * 8 * weights::SHUFFLE_BYTE;
    }
    if encoding.byte_order == csd_sim::wire::ByteOrder::Big {
        ops += logical * weights::DECODE_ELEM;
    }
    if encoding.fill_value.is_some() {
        ops += logical * weights::DECODE_ELEM;
    }
    let tracer = ctx.par.tracer();
    tracer.counter_add("kernel.decode.calls", 1);
    tracer.counter_add("kernel.decode.bytes_in", e.encoded_actual_bytes());
    tracer.counter_add("kernel.decode.bytes_out", data.len() as u64 * 8);
    tracer.counter_add(
        match encoding.codec {
            Codec::Gzip => "kernel.decode.codec.gzip",
            Codec::Zlib => "kernel.decode.codec.zlib",
            Codec::None => "kernel.decode.codec.none",
        },
        1,
    );
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(data, logical)),
        ops,
    ))
}

fn k_col(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [t, c] = expect_args::<2>("col", args)?;
    let table = t.as_table()?;
    let column = table.column(c.as_str()?)?;
    let data: Vec<f64> = match column {
        Column::F64(v) => v.to_vec(),
        Column::I64(v) => v.iter().map(|x| *x as f64).collect(),
        Column::Dict { codes, .. } => codes.iter().map(|c| f64::from(*c)).collect(),
    };
    let arr = ArrayVal::with_logical(data, table.logical_rows());
    Ok(BuiltinOutput::new(
        Value::Array(arr),
        table.logical_rows() * weights::VIEW,
    ))
}

fn k_filter(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [t, m] = expect_args::<2>("filter", args)?;
    let table = t.as_table()?;
    let mask = m.as_bool_array()?;
    let out = table.filter_with(mask.data(), ctx.par)?;
    let ops = table.logical_rows() * (1 + table.column_count() as u64 * weights::GATHER);
    Ok(BuiltinOutput::new(Value::Table(out), ops))
}

fn k_select(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a, m] = expect_args::<2>("select", args)?;
    let arr = a.as_array()?;
    let mask = m.as_bool_array()?;
    if arr.len() != mask.len() {
        return Err(LangError::runtime(format!(
            "select: array has {} elements, mask has {}",
            arr.len(),
            mask.len()
        )));
    }
    let xs = arr.data();
    let keep = mask.data();
    // Chunk-ordered concat of per-chunk selections == the serial selection.
    let data: Vec<f64> = match ctx.par.map_chunks(xs.len(), 1, |_, r| {
        xs[r.clone()]
            .iter()
            .zip(&keep[r])
            .filter(|(_, k)| **k)
            .map(|(x, _)| *x)
            .collect::<Vec<f64>>()
    }) {
        Some(parts) => parts.concat(),
        None => xs
            .iter()
            .zip(keep)
            .filter(|(_, k)| **k)
            .map(|(x, _)| *x)
            .collect(),
    };
    let logical =
        ((arr.logical_len() as f64 * mask.selectivity()).round() as u64).max(data.len() as u64);
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(data, logical)),
        arr.logical_len() * weights::SELECT,
    ))
}

fn k_len(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [x] = expect_args::<1>("len", args)?;
    Ok(BuiltinOutput::new(Value::Num(x.logical_elems() as f64), 1))
}

fn k_sum(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    reduce("sum", args, ctx.par)
}

fn k_mean(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    reduce("mean", args, ctx.par)
}

fn k_minv(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    reduce("minv", args, ctx.par)
}

fn k_maxv(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    reduce("maxv", args, ctx.par)
}

fn k_count(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [m] = expect_args::<1>("count", args)?;
    let mask = m.as_bool_array()?;
    let logical_count = (mask.logical_len() as f64 * mask.selectivity()).round();
    Ok(BuiltinOutput::new(
        Value::Num(logical_count),
        mask.logical_len() * weights::REDUCE,
    ))
}

fn k_exp(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    unary_math("exp", args, f64::exp, weights::TRANSCENDENTAL, ctx.par)
}

fn k_log(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    unary_math("log", args, f64::ln, weights::TRANSCENDENTAL, ctx.par)
}

fn k_sqrt(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    unary_math("sqrt", args, f64::sqrt, weights::SQRT, ctx.par)
}

fn k_erf(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    unary_math("erf", args, erf, weights::ERF, ctx.par)
}

fn k_abs(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    unary_math("abs", args, f64::abs, weights::VIEW, ctx.par)
}

fn k_sort(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a] = expect_args::<1>("sort", args)?;
    let arr = a.as_array()?;
    let mut data = arr.data().to_vec();
    data.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in sort inputs"));
    let n = arr.logical_len();
    let ops = weights::SORT * n * (n.max(2) as f64).log2().ceil() as u64;
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(data, n)),
        ops,
    ))
}

fn k_dot(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a, b] = expect_args::<2>("dot", args)?;
    let (x, y) = (a.as_array()?, b.as_array()?);
    if x.len() != y.len() {
        return Err(LangError::runtime("dot: length mismatch"));
    }
    let v = ctx.par.dot(x.data(), y.data());
    Ok(BuiltinOutput::new(
        Value::Num(v),
        x.logical_len() * weights::REDUCE,
    ))
}

fn k_where(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [m, a, b] = expect_args::<3>("where", args)?;
    let mask = m.as_bool_array()?;
    let (x, y) = (a.as_array()?, b.as_array()?);
    if mask.len() != x.len() || x.len() != y.len() {
        return Err(LangError::runtime("where: length mismatch"));
    }
    let (keep, xs, ys) = (mask.data(), x.data(), y.data());
    // Element-local, so chunk-ordered concat == the serial map.
    let data: Vec<f64> = match ctx.par.map_chunks(xs.len(), 1, |_, r| {
        keep[r.clone()]
            .iter()
            .zip(xs[r.clone()].iter().zip(&ys[r]))
            .map(|(k, (p, q))| if *k { *p } else { *q })
            .collect::<Vec<f64>>()
    }) {
        Some(parts) => parts.concat(),
        None => keep
            .iter()
            .zip(xs.iter().zip(ys))
            .map(|(k, (p, q))| if *k { *p } else { *q })
            .collect(),
    };
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(data, x.logical_len())),
        x.logical_len() * weights::SELECT,
    ))
}

fn k_matmul(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a, b] = expect_args::<2>("matmul", args)?;
    let (x, y) = (a.as_matrix()?, b.as_matrix()?);
    let out = x.matmul_with(y, ctx.par)?;
    let ops = weights::MADD * x.logical_rows() * x.logical_cols() * y.logical_cols();
    Ok(BuiltinOutput::new(Value::Matrix(out), ops))
}

fn k_to_csr(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a] = expect_args::<1>("to_csr", args)?;
    let m = a.as_matrix()?;
    let csr = m.to_csr();
    let ops = weights::TO_CSR * m.logical_rows() * m.logical_cols();
    Ok(BuiltinOutput::new(Value::Csr(csr), ops))
}

fn k_spmv(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a, x] = expect_args::<2>("spmv", args)?;
    let csr = a.as_csr()?;
    let vec = x.as_array()?;
    let y = csr.spmv_with(vec.data(), ctx.par)?;
    let ops = weights::SPMV * csr.logical_nnz();
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(y, csr.logical_rows())),
        ops,
    ))
}

fn k_pagerank_step(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a, r, d] = expect_args::<3>("pagerank_step", args)?;
    let csr = a.as_csr()?;
    let ranks = r.as_array()?;
    let damping = d.as_num()?;
    let next = csr.pagerank_step_with(ranks.data(), damping, ctx.par)?;
    let ops = weights::PR_EDGE * csr.logical_nnz() + weights::PR_NODE * csr.logical_rows();
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(next, csr.logical_rows())),
        ops,
    ))
}

fn k_gather(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    // An array-index join: `gather(values, idx)[i] = values[idx[i]]`
    // — how a dense-key hash join (TPC-H Q14's lineitem ⋈ part)
    // probes its build side.
    let [v, idx] = expect_args::<2>("gather", args)?;
    let values = v.as_array()?;
    let indices = idx.as_array()?;
    let mut out = Vec::with_capacity(indices.len());
    for raw in indices.data() {
        let i = *raw as usize;
        let x = values.data().get(i).copied().ok_or_else(|| {
            LangError::runtime(format!(
                "gather: index {i} out of range for {} values",
                values.len()
            ))
        })?;
        out.push(x);
    }
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(out, indices.logical_len())),
        indices.logical_len() * weights::SELECT,
    ))
}

fn k_frob(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a] = expect_args::<1>("frob", args)?;
    let m = a.as_matrix()?;
    let ss = ctx.par.sum_by(m.data(), |x| x * x);
    // Extrapolate the sum of squares to logical scale, like `sum`.
    let ratio = (m.logical_rows() * m.logical_cols()) as f64 / (m.rows() * m.cols()).max(1) as f64;
    Ok(BuiltinOutput::new(
        Value::Num((ss * ratio).sqrt()),
        m.logical_rows() * m.logical_cols() * weights::REDUCE,
    ))
}

fn k_gram(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    // `gram(M) = Mᵀ·M`, the d×d Gram matrix of an n×d feature
    // block; the classic second stage after a projection GEMM.
    let [a] = expect_args::<1>("gram", args)?;
    let m = a.as_matrix()?;
    let (n, d) = (m.rows(), m.cols());
    let accumulate = |acc: &mut Vec<f64>, rows: std::ops::Range<usize>| {
        for r in rows {
            for i in 0..d {
                let x = m.get(r, i);
                if x == 0.0 {
                    continue;
                }
                for j in 0..d {
                    acc[i * d + j] += x * m.get(r, j);
                }
            }
        }
    };
    // Per-chunk d×d partials, combined in chunk order.
    let mut out = match ctx.par.map_chunks(n, d, |_, rows| {
        let mut acc = vec![0.0; d * d];
        accumulate(&mut acc, rows);
        acc
    }) {
        Some(parts) => {
            let mut acc = vec![0.0; d * d];
            for part in parts {
                for (o, v) in acc.iter_mut().zip(&part) {
                    *o += v;
                }
            }
            acc
        }
        None => {
            let mut acc = vec![0.0; d * d];
            accumulate(&mut acc, 0..n);
            acc
        }
    };
    // Scale accumulated sums to logical row count.
    let ratio = m.logical_rows() as f64 / n.max(1) as f64;
    for v in &mut out {
        *v *= ratio;
    }
    let ops = weights::MADD * m.logical_rows() * (d as u64) * (d as u64);
    Ok(BuiltinOutput::new(
        Value::Matrix(Matrix::new(out, d, d)?),
        ops,
    ))
}

fn expect_args<'a, const N: usize>(name: &str, args: &'a [Value]) -> Result<&'a [Value; N]> {
    args.try_into().map_err(|_| LangError::Arity {
        name: name.to_owned(),
        expected: N,
        got: args.len(),
    })
}

fn reduce(name: &str, args: &[Value], par: &ParEngine) -> Result<BuiltinOutput> {
    let [a] = expect_args::<1>(name, args)?;
    let arr = a.as_array()?;
    if arr.is_empty() {
        return Err(LangError::runtime(format!("{name}: empty array")));
    }
    let data = arr.data();
    let ratio = arr.scale_ratio();
    let v = match name {
        // Sums extrapolate to logical scale; the sample total stands for the
        // whole dataset. Chunk-ordered partial sums keep the result
        // identical at any thread count.
        "sum" => par.sum(data) * ratio,
        "mean" => par.sum(data) / data.len() as f64,
        "minv" => par.min(data),
        "maxv" => par.max(data),
        _ => unreachable!("reduce called with {name}"),
    };
    Ok(BuiltinOutput::new(
        Value::Num(v),
        arr.logical_len() * weights::REDUCE,
    ))
}

fn unary_math(
    name: &str,
    args: &[Value],
    f: impl Fn(f64) -> f64 + Sync,
    weight: u64,
    par: &ParEngine,
) -> Result<BuiltinOutput> {
    let [a] = expect_args::<1>(name, args)?;
    match a {
        Value::Num(n) => Ok(BuiltinOutput::new(Value::Num(f(*n)), weight)),
        Value::Array(arr) => {
            let data: Vec<f64> = match par.map_elems(arr.data(), &f) {
                Some(mapped) => mapped,
                None => arr.data().iter().map(|x| f(*x)).collect(),
            };
            Ok(BuiltinOutput::new(
                Value::Array(ArrayVal::with_logical(data, arr.logical_len())),
                arr.logical_len() * weight,
            ))
        }
        other => Err(LangError::type_error(format!(
            "{name} expects num or array, got {}",
            other.type_name()
        ))),
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of the error function
/// (max absolute error 1.5e-7, plenty for Black-Scholes pricing).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

fn group_sum(args: &[Value], _ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [k, v] = expect_args::<2>("group_sum", args)?;
    let keys = k.as_array()?;
    let vals = v.as_array()?;
    if keys.len() != vals.len() {
        return Err(LangError::runtime("group_sum: length mismatch"));
    }
    let mut groups: BTreeMap<i64, (f64, u64)> = BTreeMap::new();
    for (key, val) in keys.data().iter().zip(vals.data()) {
        let entry = groups.entry(key.round() as i64).or_insert((0.0, 0));
        entry.0 += *val;
        entry.1 += 1;
    }
    let ratio = keys.scale_ratio();
    let mut gk = Vec::with_capacity(groups.len());
    let mut gs = Vec::with_capacity(groups.len());
    let mut gc = Vec::with_capacity(groups.len());
    for (key, (sum, count)) in &groups {
        gk.push(*key as f64);
        // Sums and counts extrapolate to logical scale.
        gs.push(sum * ratio);
        gc.push((*count as f64 * ratio).round());
    }
    // Group cardinality is a data property, not a scale property: the
    // output is genuinely small, which is what makes aggregation such a
    // good ISP candidate.
    let table = Table::new(vec![
        ("key".into(), Column::F64(Arc::new(gk))),
        ("sum".into(), Column::F64(Arc::new(gs))),
        ("count".into(), Column::F64(Arc::new(gc))),
    ])?;
    Ok(BuiltinOutput::new(
        Value::Table(table),
        keys.logical_len() * weights::GROUP,
    ))
}

fn gemm_batch(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [a, b] = expect_args::<2>("gemm_batch", args)?;
    let (x, y) = (a.as_matrix()?, b.as_matrix()?);
    // The logical row count encodes the batch dimension: a logical
    // (B·n × n) input materialized as one representative n × n block.
    if x.rows() == 0 || x.logical_rows() % x.rows() as u64 != 0 {
        return Err(LangError::runtime(
            "gemm_batch: logical rows must be a whole multiple of the block rows",
        ));
    }
    let batches = x.logical_rows() / x.rows() as u64;
    let block = x.matmul_with(y, ctx.par)?;
    let n = x.rows() as u64;
    let k = x.cols() as u64;
    let m = y.cols() as u64;
    let ops = weights::MADD * batches * n * k * m;
    let out = Matrix::with_logical(
        block.data().to_vec(),
        block.rows(),
        block.cols(),
        batches * block.rows() as u64,
        block.cols() as u64,
    )?;
    Ok(BuiltinOutput::new(Value::Matrix(out), ops))
}

fn kmeans_assign(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [p, c] = expect_args::<2>("kmeans_assign", args)?;
    let points = p.as_matrix()?;
    let centroids = c.as_matrix()?;
    if points.cols() != centroids.cols() {
        return Err(LangError::runtime("kmeans_assign: dimension mismatch"));
    }
    let nearest = |i: usize| -> f64 {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for kc in 0..centroids.rows() {
            let mut d = 0.0;
            for j in 0..points.cols() {
                let diff = points.get(i, j) - centroids.get(kc, j);
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = kc;
            }
        }
        best as f64
    };
    // Row-local, so chunk-ordered concat == the serial loop. Per-row work
    // is one distance per centroid per dimension.
    let per_row = centroids.rows().saturating_mul(points.cols()).max(1);
    let assign: Vec<f64> = match ctx.par.map_chunks(points.rows(), per_row, |_, rows| {
        rows.map(nearest).collect::<Vec<f64>>()
    }) {
        Some(parts) => parts.concat(),
        None => (0..points.rows()).map(nearest).collect(),
    };
    let ops =
        weights::KMEANS * points.logical_rows() * centroids.rows() as u64 * points.cols() as u64;
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(assign, points.logical_rows())),
        ops,
    ))
}

fn kmeans_update(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [p, a, k] = expect_args::<3>("kmeans_update", args)?;
    let points = p.as_matrix()?;
    let assign = a.as_array()?;
    let k = k.as_num()? as usize;
    if assign.len() != points.rows() {
        return Err(LangError::runtime(
            "kmeans_update: assignment length mismatch",
        ));
    }
    if k == 0 {
        return Err(LangError::runtime("kmeans_update: k must be positive"));
    }
    let d = points.cols();
    // Per-chunk (sums, counts) partials accumulated over a contiguous row
    // range; chunks partition rows in order, so combining partials in chunk
    // order also reproduces the serial error for the first bad assignment.
    let accumulate = |rows: std::ops::Range<usize>| -> Result<(Vec<f64>, Vec<u64>)> {
        let mut sums = vec![0.0; k * d];
        let mut counts = vec![0u64; k];
        for i in rows {
            let c = assign.data()[i] as usize;
            if c >= k {
                return Err(LangError::runtime(format!(
                    "kmeans_update: assignment {c} out of range for k={k}"
                )));
            }
            counts[c] += 1;
            for j in 0..d {
                sums[c * d + j] += points.get(i, j);
            }
        }
        Ok((sums, counts))
    };
    let (mut sums, counts) = match ctx
        .par
        .map_chunks(points.rows(), d.max(1), |_, rows| accumulate(rows))
    {
        Some(parts) => {
            let mut sums = vec![0.0; k * d];
            let mut counts = vec![0u64; k];
            for part in parts {
                let (ps, pc) = part?;
                for (o, v) in sums.iter_mut().zip(&ps) {
                    *o += v;
                }
                for (o, v) in counts.iter_mut().zip(&pc) {
                    *o += v;
                }
            }
            (sums, counts)
        }
        None => accumulate(0..points.rows())?,
    };
    for c in 0..k {
        if counts[c] > 0 {
            for j in 0..d {
                sums[c * d + j] /= counts[c] as f64;
            }
        }
    }
    let ops = weights::REDUCE * points.logical_rows() * d as u64;
    Ok(BuiltinOutput::new(
        Value::Matrix(Matrix::new(sums, k, d)?),
        ops,
    ))
}

fn forest_score(args: &[Value], ctx: &KernelCtx<'_>) -> Result<BuiltinOutput> {
    let [f, x] = expect_args::<2>("forest_score", args)?;
    let forest = f.as_forest()?;
    let feats = x.as_matrix()?;
    let cols = feats.cols();
    let score_range = |rows: std::ops::Range<usize>| -> (Vec<f64>, u64) {
        let mut scores = Vec::with_capacity(rows.len());
        let mut visited: u64 = 0;
        let mut row = vec![0.0; cols];
        for i in rows {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = feats.get(i, j);
            }
            let (s, v) = forest.score(&row);
            scores.push(s);
            visited += u64::from(v);
        }
        (scores, visited)
    };
    // Row-local scores (concat in chunk order) plus an exact integer
    // visit count (order-independent sum).
    let (scores, visited_total) = match ctx
        .par
        .map_chunks(feats.rows(), cols.max(1), |_, rows| score_range(rows))
    {
        Some(parts) => {
            let mut scores = Vec::with_capacity(feats.rows());
            let mut visited: u64 = 0;
            for (s, v) in parts {
                scores.extend_from_slice(&s);
                visited += v;
            }
            (scores, visited)
        }
        None => score_range(0..feats.rows()),
    };
    // Per-row cost is the *measured* mean traversal length — data-dependent,
    // like real GBDT inference.
    let mean_visited = if feats.rows() == 0 {
        0.0
    } else {
        visited_total as f64 / feats.rows() as f64
    };
    let ops =
        (weights::TREE_NODE as f64 * mean_visited * feats.logical_rows() as f64).round() as u64;
    Ok(BuiltinOutput::new(
        Value::Array(ArrayVal::with_logical(scores, feats.logical_rows())),
        ops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{Forest, Tree, TreeNode};
    use crate::value::BoolArrayVal;

    fn arr(v: Vec<f64>) -> Value {
        Value::Array(ArrayVal::new(v))
    }

    fn arr_logical(v: Vec<f64>, logical: u64) -> Value {
        Value::Array(ArrayVal::with_logical(v, logical))
    }

    #[test]
    fn scan_returns_dataset_and_charges_storage() {
        let mut st = Storage::new();
        st.insert("d", arr_logical(vec![1.0, 2.0], 1000));
        let out = call("scan", &[Value::Str("d".into())], &st).expect("scan");
        assert_eq!(out.storage_bytes, 8000);
        assert_eq!(out.value.as_array().expect("arr").len(), 2);
    }

    #[test]
    fn scan_unknown_dataset_errors() {
        let st = Storage::new();
        let e = call("scan", &[Value::Str("nope".into())], &st).unwrap_err();
        assert!(matches!(e, LangError::UnknownDataset { .. }));
    }

    #[test]
    fn reductions_extrapolate_to_logical_scale() {
        let st = Storage::new();
        let a = arr_logical(vec![1.0, 2.0, 3.0, 4.0], 4000);
        let sum = call("sum", std::slice::from_ref(&a), &st).expect("sum");
        assert!((sum.value.as_num().expect("num") - 10_000.0).abs() < 1e-6);
        let mean = call("mean", std::slice::from_ref(&a), &st).expect("mean");
        assert!((mean.value.as_num().expect("num") - 2.5).abs() < 1e-12);
        let mn = call("minv", std::slice::from_ref(&a), &st).expect("min");
        assert_eq!(mn.value.as_num().expect("num"), 1.0);
        let mx = call("maxv", &[a], &st).expect("max");
        assert_eq!(mx.value.as_num().expect("num"), 4.0);
    }

    #[test]
    fn unary_math_applies_elementwise() {
        let st = Storage::new();
        let out = call("sqrt", &[arr(vec![4.0, 9.0])], &st).expect("sqrt");
        assert_eq!(out.value.as_array().expect("arr").data(), &[2.0, 3.0]);
        let out = call("exp", &[Value::Num(0.0)], &st).expect("exp");
        assert_eq!(out.value.as_num().expect("num"), 1.0);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn sort_orders_and_costs_nlogn() {
        let st = Storage::new();
        let out = call("sort", &[arr_logical(vec![3.0, 1.0, 2.0], 3000)], &st).expect("sort");
        assert_eq!(out.value.as_array().expect("arr").data(), &[1.0, 2.0, 3.0]);
        let expected = weights::SORT * 3000 * (3000f64).log2().ceil() as u64;
        assert_eq!(out.ops, expected);
    }

    #[test]
    fn select_scales_output_by_selectivity() {
        let st = Storage::new();
        let mask = Value::BoolArray(BoolArrayVal::with_logical(
            vec![true, false, true, false],
            4000,
        ));
        let out = call(
            "select",
            &[arr_logical(vec![1.0, 2.0, 3.0, 4.0], 4000), mask],
            &st,
        )
        .expect("select");
        let a = out.value.as_array().expect("arr");
        assert_eq!(a.data(), &[1.0, 3.0]);
        assert_eq!(a.logical_len(), 2000);
    }

    #[test]
    fn count_extrapolates() {
        let st = Storage::new();
        let mask = Value::BoolArray(BoolArrayVal::with_logical(
            vec![true, true, false, false],
            4000,
        ));
        let out = call("count", &[mask], &st).expect("count");
        assert_eq!(out.value.as_num().expect("num"), 2000.0);
    }

    #[test]
    fn group_sum_keeps_group_cardinality_and_extrapolates_sums() {
        let st = Storage::new();
        let keys = arr_logical(vec![1.0, 2.0, 1.0, 2.0], 4000);
        let vals = arr_logical(vec![10.0, 20.0, 30.0, 40.0], 4000);
        let out = call("group_sum", &[keys, vals], &st).expect("group");
        let t = out.value.as_table().expect("table");
        assert_eq!(t.rows(), 2);
        assert_eq!(t.logical_rows(), 2, "groups do not scale with data size");
        match t.column("sum").expect("sum") {
            Column::F64(v) => {
                assert!((v[0] - 40_000.0).abs() < 1e-6);
                assert!((v[1] - 60_000.0).abs() < 1e-6);
            }
            other => panic!("wrong type {}", other.type_name()),
        }
    }

    #[test]
    fn gemm_batch_multiplies_ops_by_batches() {
        let st = Storage::new();
        let a =
            Value::Matrix(Matrix::with_logical(vec![1.0, 0.0, 0.0, 1.0], 2, 2, 200, 2).expect("a"));
        let b = Value::Matrix(Matrix::new(vec![3.0, 4.0, 5.0, 6.0], 2, 2).expect("b"));
        let out = call("gemm_batch", &[a, b], &st).expect("gemm");
        // 100 batches × 2·2·2·2 madds × weight 2.
        assert_eq!(out.ops, weights::MADD * 100 * 8);
        let m = out.value.as_matrix().expect("m");
        assert_eq!(m.data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.logical_rows(), 200);
    }

    #[test]
    fn gemm_batch_rejects_ragged_logical_rows() {
        let st = Storage::new();
        let a = Value::Matrix(Matrix::with_logical(vec![1.0; 4], 2, 2, 201, 2).expect("a"));
        let b = Value::Matrix(Matrix::new(vec![1.0; 4], 2, 2).expect("b"));
        assert!(call("gemm_batch", &[a, b], &st).is_err());
    }

    #[test]
    fn kmeans_assign_and_update_round_trip() {
        let st = Storage::new();
        // Four points in 1-D: two clusters around 0 and 10.
        let points = Value::Matrix(Matrix::new(vec![0.0, 1.0, 10.0, 11.0], 4, 1).expect("pts"));
        let cents = Value::Matrix(Matrix::new(vec![0.5, 10.5], 2, 1).expect("cents"));
        let out = call("kmeans_assign", &[points.clone(), cents], &st).expect("assign");
        let assign = out.value.clone();
        assert_eq!(assign.as_array().expect("a").data(), &[0.0, 0.0, 1.0, 1.0]);
        let upd = call("kmeans_update", &[points, assign, Value::Num(2.0)], &st).expect("update");
        let m = upd.value.as_matrix().expect("m");
        assert!((m.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((m.get(1, 0) - 10.5).abs() < 1e-12);
    }

    #[test]
    fn forest_score_uses_measured_depth() {
        let st = Storage::new();
        let tree = Tree::new(vec![
            TreeNode::split(0, 0.5, 1, 2),
            TreeNode::leaf(-1.0),
            TreeNode::leaf(1.0),
        ])
        .expect("tree");
        let forest = Value::Forest(Forest::new(vec![tree], 1).expect("forest"));
        let feats =
            Value::Matrix(Matrix::with_logical(vec![0.0, 1.0], 2, 1, 2000, 1).expect("feats"));
        let out = call("forest_score", &[forest, feats], &st).expect("score");
        assert_eq!(out.value.as_array().expect("a").data(), &[-1.0, 1.0]);
        // 2 nodes visited per row, 2000 logical rows.
        assert_eq!(out.ops, weights::TREE_NODE * 2 * 2000);
    }

    #[test]
    fn gather_joins_by_dense_key() {
        let st = Storage::new();
        let values = arr(vec![10.0, 20.0, 30.0]);
        let idx = arr_logical(vec![2.0, 0.0, 2.0, 1.0], 4000);
        let out = call("gather", &[values, idx], &st).expect("gather");
        let a = out.value.as_array().expect("arr");
        assert_eq!(a.data(), &[30.0, 10.0, 30.0, 20.0]);
        assert_eq!(a.logical_len(), 4000);
    }

    #[test]
    fn gather_rejects_out_of_range_index() {
        let st = Storage::new();
        let values = arr(vec![10.0]);
        let idx = arr(vec![5.0]);
        assert!(call("gather", &[values, idx], &st).is_err());
    }

    #[test]
    fn frob_extrapolates_to_logical_scale() {
        let st = Storage::new();
        let m = Value::Matrix(Matrix::with_logical(vec![3.0, 4.0], 1, 2, 100, 2).expect("m"));
        let out = call("frob", &[m], &st).expect("frob");
        // Sum of squares 25, scaled by 100: sqrt(2500) = 50.
        assert!((out.value.as_num().expect("n") - 50.0).abs() < 1e-9);
    }

    #[test]
    fn gram_computes_mt_m() {
        let st = Storage::new();
        // M = [[1, 2], [3, 4]]; MᵀM = [[10, 14], [14, 20]].
        let m = Value::Matrix(Matrix::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2).expect("m"));
        let out = call("gram", &[m], &st).expect("gram");
        let g = out.value.as_matrix().expect("g");
        assert_eq!(g.data(), &[10.0, 14.0, 14.0, 20.0]);
    }

    #[test]
    fn scan_raw_and_decode_round_trip_encoded_datasets() {
        use crate::value::EncodedVal;
        use csd_sim::wire::Encoding;

        let data: Vec<f64> = (0..10_000).map(|i| ((i * 31) % 257) as f64 * 0.5).collect();
        let mut st = Storage::new();
        st.insert(
            "wire",
            Value::Encoded(EncodedVal::from_f64s(
                Encoding::gzip_shuffled(),
                &data,
                10_000_000,
            )),
        );
        st.insert("plain", arr_logical(data.clone(), 10_000_000));

        // scan_raw streams the *encoded* bytes — far fewer than the
        // decoded 8 B/elem — and scan refuses encoded datasets.
        let raw = call("scan_raw", &[Value::Str("wire".into())], &st).expect("scan_raw");
        let plain = call("scan", &[Value::Str("plain".into())], &st).expect("scan");
        assert!(raw.storage_bytes * 2 < plain.storage_bytes);
        assert!(call("scan", &[Value::Str("wire".into())], &st).is_err());
        assert!(call("scan_raw", &[Value::Str("plain".into())], &st).is_err());

        // decode restores the exact f64s and charges inflate + shuffle ops.
        let out = call("decode", std::slice::from_ref(&raw.value), &st).expect("decode");
        assert_eq!(out.value.as_array().expect("arr").data(), &data[..]);
        assert_eq!(out.value.as_array().expect("arr").logical_len(), 10_000_000);
        assert!(out.ops > 10_000_000 * weights::SHUFFLE_BYTE * 8);
        assert_eq!(out.storage_bytes, 0);
        assert!(call("decode", &[Value::Num(1.0)], &st).is_err());
    }

    #[test]
    fn decode_is_bit_identical_across_thread_counts() {
        use crate::par::ParallelPolicy;
        use crate::value::EncodedVal;
        use csd_sim::wire::{ByteOrder, Codec, Encoding};

        let data: Vec<f64> = (0..20_000)
            .map(|i| ((i * 37) % 101) as f64 * 0.5 - 20.0)
            .collect();
        let st = Storage::new();
        for encoding in [
            Encoding::gzip_shuffled(),
            Encoding {
                codec: Codec::Zlib,
                shuffle: false,
                byte_order: ByteOrder::Big,
                fill_value: Some(-15.0),
            },
            Encoding::raw(),
        ] {
            let arg = [Value::Encoded(EncodedVal::from_f64s(
                encoding, &data, 2_000_000,
            ))];
            let mut outputs = Vec::new();
            for threads in [1usize, 2, 4, 8] {
                let engine = ParEngine::new(ParallelPolicy::new(threads, 512).expect("policy"));
                let ctx = KernelCtx {
                    storage: &st,
                    par: &engine,
                };
                let out = call_in("decode", &arg, &ctx).expect("decode");
                outputs.push((threads, format!("{out:?}")));
            }
            let (_, reference) = &outputs[0];
            for (threads, repr) in &outputs[1..] {
                assert_eq!(repr, reference, "decode differs at {threads} threads");
            }
        }
    }

    #[test]
    fn arity_errors_name_the_function() {
        let st = Storage::new();
        let e = call("sum", &[], &st).unwrap_err();
        assert!(matches!(
            e,
            LangError::Arity {
                expected: 1,
                got: 0,
                ..
            }
        ));
    }

    #[test]
    fn all_builtin_names_are_registered() {
        for name in BUILTIN_NAMES {
            assert!(is_builtin(name));
        }
        assert!(!is_builtin("np_dot"));
    }

    #[test]
    fn kernel_table_is_aligned_with_builtin_names() {
        let table_names: Vec<&str> = KERNELS.iter().map(|k| k.name).collect();
        assert_eq!(table_names, BUILTIN_NAMES);
        for name in BUILTIN_NAMES {
            let id = kernel_id(name).expect("registered");
            assert_eq!(id.name(), *name);
        }
        assert!(kernel_id("np_dot").is_none());
    }

    #[test]
    fn kernel_invoke_matches_call_by_name() {
        let st = Storage::new();
        let a = arr_logical(vec![1.0, 2.0, 3.0, 4.0], 4000);
        let by_name = call("sum", std::slice::from_ref(&a), &st).expect("sum");
        let by_id = kernel_id("sum")
            .expect("id")
            .invoke(std::slice::from_ref(&a), &st)
            .expect("sum");
        assert_eq!(by_name, by_id);
    }

    #[test]
    fn sorted_kernel_table_resolves_every_entry() {
        // The binary-search table is sorted, complete, and maps every name
        // back to its insertion-order kernel id.
        let sorted = &*SORTED_KERNELS;
        assert_eq!(sorted.len(), KERNELS.len());
        assert!(sorted.windows(2).all(|w| w[0].0 < w[1].0));
        for (i, kernel) in KERNELS.iter().enumerate() {
            let id = kernel_id(kernel.name).expect("every KERNELS entry resolves");
            assert_eq!(
                id,
                KernelId(i as u16),
                "{} resolves to its slot",
                kernel.name
            );
            assert_eq!(id.name(), kernel.name);
        }
        assert_eq!(KERNELS[SCAN_INDEX as usize].name, "scan");
        assert!(!kernel_id("scan").expect("scan").charges_copy());
        assert!(kernel_id("sum").expect("sum").charges_copy());
    }

    #[test]
    fn wired_kernels_are_bit_identical_across_thread_counts() {
        use crate::forest::{Forest, Tree, TreeNode};
        use crate::par::ParallelPolicy;

        let mut st = Storage::new();
        let n = 20_000usize;
        let xs: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 101) as f64 * 0.5 - 20.0)
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| ((i * 13) % 89) as f64 * 0.25 - 10.0)
            .collect();
        let keep: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        st.insert("xs", arr_logical(xs.clone(), 1_000_000));
        let mvals: Vec<f64> = (0..96 * 96)
            .map(|i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    (i % 23) as f64 - 11.0
                }
            })
            .collect();
        let mat = Matrix::new(mvals, 96, 96).expect("mat");
        let csr = mat.to_csr();
        let points = Matrix::new(
            (0..512 * 8).map(|i| ((i * 7) % 19) as f64).collect(),
            512,
            8,
        )
        .expect("pts");
        let cents = Matrix::new((0..4 * 8).map(|i| i as f64).collect(), 4, 8).expect("cents");
        let assign_vals: Vec<f64> = (0..512).map(|i| (i % 4) as f64).collect();
        let tree = Tree::new(vec![
            TreeNode::split(0, 6.0, 1, 2),
            TreeNode::leaf(-1.0),
            TreeNode::leaf(1.0),
        ])
        .expect("tree");
        let forest = Forest::new(vec![tree], 1).expect("forest");

        let cases: Vec<(&str, Vec<Value>)> = vec![
            ("sum", vec![arr_logical(xs.clone(), 1_000_000)]),
            ("mean", vec![arr(xs.clone())]),
            ("minv", vec![arr(xs.clone())]),
            ("maxv", vec![arr(xs.clone())]),
            ("exp", vec![arr(ys.clone())]),
            ("abs", vec![arr(xs.clone())]),
            ("dot", vec![arr(xs.clone()), arr(ys.clone())]),
            (
                "where",
                vec![
                    Value::BoolArray(BoolArrayVal::new(keep.clone())),
                    arr(xs.clone()),
                    arr(ys.clone()),
                ],
            ),
            (
                "select",
                vec![arr(xs.clone()), Value::BoolArray(BoolArrayVal::new(keep))],
            ),
            (
                "matmul",
                vec![Value::Matrix(mat.clone()), Value::Matrix(mat.clone())],
            ),
            (
                "gemm_batch",
                vec![
                    Value::Matrix(
                        Matrix::with_logical(mat.data().to_vec(), 96, 96, 960, 96).expect("gm"),
                    ),
                    Value::Matrix(mat.clone()),
                ],
            ),
            ("frob", vec![Value::Matrix(mat.clone())]),
            ("gram", vec![Value::Matrix(mat.clone())]),
            (
                "spmv",
                vec![Value::Csr(csr.clone()), arr(ys[..96].to_vec())],
            ),
            (
                "pagerank_step",
                vec![Value::Csr(csr), arr(vec![1.0 / 96.0; 96]), Value::Num(0.85)],
            ),
            (
                "kmeans_assign",
                vec![Value::Matrix(points.clone()), Value::Matrix(cents)],
            ),
            (
                "kmeans_update",
                vec![Value::Matrix(points), arr(assign_vals), Value::Num(4.0)],
            ),
            (
                "forest_score",
                vec![
                    Value::Forest(forest),
                    Value::Matrix(
                        Matrix::new((0..4096).map(|i| (i % 13) as f64).collect(), 512, 8)
                            .expect("feats"),
                    ),
                ],
            ),
        ];

        for (name, argv) in &cases {
            let mut outputs = Vec::new();
            for threads in [1usize, 2, 8] {
                let engine = ParEngine::new(ParallelPolicy::new(threads, 512).expect("policy"));
                let ctx = KernelCtx {
                    storage: &st,
                    par: &engine,
                };
                let out = call_in(name, argv, &ctx).expect(name);
                outputs.push((threads, format!("{out:?}")));
            }
            let (_, reference) = &outputs[0];
            for (threads, repr) in &outputs[1..] {
                assert_eq!(repr, reference, "{name} differs at {threads} threads");
            }
        }
    }
}
