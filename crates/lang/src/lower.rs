//! The lowering pass from the ALang AST to the register bytecode.
//!
//! Lowering does once, ahead of execution, everything the tree-walking
//! interpreter redoes per line execution: variable names resolve to dense
//! slot indices, builtin names resolve to [`KernelId`]s (an unknown function
//! is a lower-time error, like a failed Cython compile), per-line input
//! slot lists are deduplicated and cached, and the `scan`-exempt
//! library-boundary copy charge becomes a precomputed flag on each call
//! instruction. Instructions are emitted in post-order, so the VM charges
//! costs in exactly the sequence the interpreter's tree walk would.

use crate::ast::{Expr, Line, Program};
use crate::builtins::{kernel_id, KernelId};
use crate::bytecode::{Instr, LineMeta, LoweredProgram};
use crate::error::{LangError, Result};
use crate::value::Value;
use std::collections::BTreeMap;

/// Lowers a program with copy elimination disabled on every line.
///
/// # Errors
///
/// Returns [`LangError::UnknownFunction`] if any call site references an
/// unregistered builtin, or an internal limit error for programs exceeding
/// the 16-bit slot space.
pub fn lower(program: &Program) -> Result<LoweredProgram> {
    lower_with(program, &[])
}

/// Lowers a program, baking one copy-elimination flag per line (missing
/// entries default to `false`, as in [`crate::interp::Interpreter::run`]).
///
/// # Errors
///
/// Returns [`LangError::UnknownFunction`] if any call site references an
/// unregistered builtin, or an internal limit error for programs exceeding
/// the 16-bit slot space.
pub fn lower_with(program: &Program, copy_elim: &[bool]) -> Result<LoweredProgram> {
    let mut lo = Lowerer::default();
    // Register every variable up front: inputs first (name order within a
    // line), then the target, line by line. Variables that are read but
    // never defined still get a slot; reading it stays a runtime error,
    // matching the interpreter.
    for line in program.lines() {
        for name in line.inputs() {
            lo.slot_for(name)?;
        }
        lo.slot_for(&line.target)?;
    }
    lo.n_vars = lo.next_slot;
    lo.max_slots = lo.next_slot;

    for line in program.lines() {
        lo.lower_line(line)?;
    }

    let mut slot_names: Vec<String> = vec![String::new(); usize::from(lo.max_slots)];
    for (name, slot) in &lo.name_to_slot {
        slot_names[usize::from(*slot)] = name.clone();
    }
    for (i, name) in slot_names
        .iter_mut()
        .enumerate()
        .skip(usize::from(lo.n_vars))
    {
        *name = format!("%t{}", i - usize::from(lo.n_vars));
    }
    let flags = (0..program.len())
        .map(|i| copy_elim.get(i).copied().unwrap_or(false))
        .collect();

    Ok(LoweredProgram {
        consts: lo.consts,
        instrs: lo.instrs,
        arg_pool: lo.arg_pool,
        metas: lo.metas,
        slot_names,
        name_to_slot: lo.name_to_slot,
        n_vars: lo.n_vars,
        n_slots: lo.max_slots,
        copy_elim: flags,
    })
}

#[derive(Default)]
struct Lowerer {
    consts: Vec<Value>,
    instrs: Vec<Instr>,
    arg_pool: Vec<u16>,
    metas: Vec<LineMeta>,
    name_to_slot: BTreeMap<String, u16>,
    next_slot: u16,
    n_vars: u16,
    temp_top: u16,
    max_slots: u16,
}

impl Lowerer {
    fn slot_for(&mut self, name: &str) -> Result<u16> {
        if let Some(&slot) = self.name_to_slot.get(name) {
            return Ok(slot);
        }
        let slot = self.next_slot;
        self.next_slot = bump(self.next_slot)?;
        self.name_to_slot.insert(name.to_owned(), slot);
        Ok(slot)
    }

    fn push_temp(&mut self) -> Result<u16> {
        let slot = self
            .n_vars
            .checked_add(self.temp_top)
            .ok_or_else(slot_overflow)?;
        self.temp_top = bump(self.temp_top)?;
        self.max_slots = self.max_slots.max(bump(slot)?);
        Ok(slot)
    }

    fn intern_const(&mut self, v: Value) -> Result<u16> {
        if let Some(i) = self.consts.iter().position(|c| *c == v) {
            return u16::try_from(i).map_err(|_| slot_overflow());
        }
        self.consts.push(v);
        u16::try_from(self.consts.len() - 1).map_err(|_| slot_overflow())
    }

    fn lower_line(&mut self, line: &Line) -> Result<()> {
        self.temp_top = 0;
        let target_slot = self.name_to_slot[&line.target];
        let input_slots: Vec<u16> = line
            .inputs()
            .iter()
            .map(|name| self.name_to_slot[name])
            .collect();
        let instr_start = self.instrs.len() as u32;
        self.lower_into(&line.expr, target_slot, line.index)?;
        self.metas.push(LineMeta {
            index: line.index,
            target: line.target.clone(),
            target_slot,
            input_slots,
            instr_start,
            instr_end: self.instrs.len() as u32,
        });
        Ok(())
    }

    /// Lowers a root expression so its result lands in `dst` (the target
    /// slot). Operand reads all happen before the root write, so a line may
    /// read the variable it redefines.
    fn lower_into(&mut self, expr: &Expr, dst: u16, line_no: usize) -> Result<()> {
        match expr {
            Expr::Num(n) => {
                let idx = self.intern_const(Value::Num(*n))?;
                self.instrs.push(Instr::Const { dst, idx });
            }
            Expr::Str(s) => {
                let idx = self.intern_const(Value::Str(s.clone()))?;
                self.instrs.push(Instr::Const { dst, idx });
            }
            Expr::Ident(name) => {
                let src = self.name_to_slot[name];
                self.instrs.push(Instr::Copy { dst, src });
            }
            Expr::Unary { op, expr } => {
                let src = self.lower_operand(expr, line_no)?;
                self.instrs.push(Instr::Unary { dst, op: *op, src });
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.lower_operand(lhs, line_no)?;
                let r = self.lower_operand(rhs, line_no)?;
                self.instrs.push(Instr::Binary {
                    dst,
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
            }
            Expr::Call { name, args } => self.lower_call(name, args, dst, line_no)?,
        }
        Ok(())
    }

    /// Lowers a sub-expression, returning the slot holding its result:
    /// identifiers resolve to their variable slot (guarded, no copy);
    /// everything else lands in a stack-disciplined temp slot.
    fn lower_operand(&mut self, expr: &Expr, line_no: usize) -> Result<u16> {
        match expr {
            Expr::Num(n) => {
                let idx = self.intern_const(Value::Num(*n))?;
                let dst = self.push_temp()?;
                self.instrs.push(Instr::Const { dst, idx });
                Ok(dst)
            }
            Expr::Str(s) => {
                let idx = self.intern_const(Value::Str(s.clone()))?;
                let dst = self.push_temp()?;
                self.instrs.push(Instr::Const { dst, idx });
                Ok(dst)
            }
            Expr::Ident(name) => {
                let slot = self.name_to_slot[name];
                self.instrs.push(Instr::Guard { slot });
                Ok(slot)
            }
            Expr::Unary { op, expr } => {
                let saved = self.temp_top;
                let src = self.lower_operand(expr, line_no)?;
                self.temp_top = saved;
                let dst = self.push_temp()?;
                self.instrs.push(Instr::Unary { dst, op: *op, src });
                Ok(dst)
            }
            Expr::Binary { op, lhs, rhs } => {
                let saved = self.temp_top;
                let l = self.lower_operand(lhs, line_no)?;
                let r = self.lower_operand(rhs, line_no)?;
                self.temp_top = saved;
                let dst = self.push_temp()?;
                self.instrs.push(Instr::Binary {
                    dst,
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
                Ok(dst)
            }
            Expr::Call { name, args } => {
                let saved = self.temp_top;
                let pending = self.lower_call_operands(name, args, line_no)?;
                self.temp_top = saved;
                let dst = self.push_temp()?;
                self.emit_call(pending, dst);
                Ok(dst)
            }
        }
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], dst: u16, line_no: usize) -> Result<()> {
        let pending = self.lower_call_operands(name, args, line_no)?;
        self.emit_call(pending, dst);
        Ok(())
    }

    /// Resolves the kernel (before lowering any argument, mirroring the
    /// interpreter's builtin check before argument evaluation) and lowers
    /// the arguments into the argument pool.
    fn lower_call_operands(
        &mut self,
        name: &str,
        args: &[Expr],
        line_no: usize,
    ) -> Result<PendingCall> {
        let kernel = kernel_id(name).ok_or_else(|| LangError::UnknownFunction {
            line: line_no + 1,
            name: name.to_owned(),
        })?;
        let mut slots = Vec::with_capacity(args.len());
        for a in args {
            slots.push(self.lower_operand(a, line_no)?);
        }
        let args_start = self.arg_pool.len() as u32;
        let args_len = u16::try_from(slots.len()).map_err(|_| slot_overflow())?;
        self.arg_pool.extend(slots);
        Ok(PendingCall {
            kernel,
            args_start,
            args_len,
            charge_copy: kernel.charges_copy(),
        })
    }

    fn emit_call(&mut self, pending: PendingCall, dst: u16) {
        self.instrs.push(Instr::Call {
            dst,
            kernel: pending.kernel,
            args_start: pending.args_start,
            args_len: pending.args_len,
            charge_copy: pending.charge_copy,
        });
    }
}

struct PendingCall {
    kernel: KernelId,
    args_start: u32,
    args_len: u16,
    charge_copy: bool,
}

fn bump(v: u16) -> Result<u16> {
    v.checked_add(1).ok_or_else(slot_overflow)
}

fn slot_overflow() -> LangError {
    LangError::runtime("lowering: program exceeds the 16-bit slot space")
}
