//! The structural cost model.
//!
//! Every line execution yields a [`LineCost`]: algorithmic compute
//! operations at paper scale, stored bytes streamed, input/output data
//! volumes (the `D_in`/`D_out` of Eq. 1), and library-boundary buffer
//! copies. An [`ExecTier`] then maps the cost onto effective operations:
//!
//! * [`ExecTier::Interpreted`] — CPython-like: every boundary copy is paid
//!   *and* a dispatch/boxing surcharge multiplies the whole line.
//! * [`ExecTier::Compiled`] — Cython-like: dispatch is gone, copies remain.
//! * [`ExecTier::CompiledCopyElim`] — ActivePy's generated code: dispatch
//!   gone and statically-eliminable copies gone (§III-C0c).
//! * [`ExecTier::Native`] — the hand-written C baseline: pure compute.
//!
//! The paper's runtime-optimization ladder (Python 41 % slower than C,
//! Cython 20 %, copy-eliminated ≈ parity; §V) *emerges* from workload
//! structure under this model; the `runtime_opt` experiment checks it.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// How the line's code was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecTier {
    /// Line-by-line interpretation (the plain Python baseline).
    Interpreted,
    /// Ahead-of-time compiled, copies at library boundaries remain (plain
    /// Cython output).
    Compiled,
    /// Compiled with redundant-memory-operation elimination (ActivePy's
    /// generated code).
    CompiledCopyElim,
    /// Hand-written native code (the C baseline): no framework overhead at
    /// all.
    Native,
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecTier::Interpreted => write!(f, "interpreted"),
            ExecTier::Compiled => write!(f, "compiled"),
            ExecTier::CompiledCopyElim => write!(f, "compiled+copy-elim"),
            ExecTier::Native => write!(f, "native"),
        }
    }
}

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Operations charged per byte of library-boundary buffer copy
    /// (memcpy + type conversion + allocator traffic).
    pub copy_ops_per_byte: f64,
    /// Fractional surcharge interpretation adds on top of everything
    /// (bytecode dispatch, reference counting, boxing).
    pub dispatch_overhead: f64,
    /// Operations charged per byte streamed from storage (parsing /
    /// deserialization into runtime values).
    pub scan_ops_per_byte: f64,
}

impl CostParams {
    /// Constants calibrated so the nine Table-I workloads land near the
    /// paper's 41 % / 20 % / ≈0 % runtime-overhead ladder (the
    /// `runtime_opt` experiment checks the calibration).
    #[must_use]
    pub fn paper_default() -> Self {
        CostParams {
            copy_ops_per_byte: 2.0,
            dispatch_overhead: 0.60,
            scan_ops_per_byte: 0.5,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::paper_default()
    }
}

/// The measured cost of executing one line once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LineCost {
    /// Algorithmic compute operations at logical (paper) scale.
    pub compute_ops: u64,
    /// Bytes streamed from device storage (logical scale).
    pub storage_bytes: u64,
    /// Volume of the line's inputs (free variables), logical scale.
    pub bytes_in: u64,
    /// Volume of the value the line produces, logical scale.
    pub bytes_out: u64,
    /// Library-boundary copy traffic, logical scale.
    pub copy_bytes: u64,
    /// The subset of `copy_bytes` the copy-elimination pass can remove.
    pub eliminable_copy_bytes: u64,
    /// Number of library calls on the line.
    pub calls: u32,
}

impl LineCost {
    /// A zero cost.
    #[must_use]
    pub fn zero() -> Self {
        LineCost::default()
    }

    /// Effective operations under `tier` with constants `params`.
    ///
    /// This is the quantity handed to a compute engine; dividing by the
    /// engine's rate gives `CT_host` or (after the CSE slowdown factor)
    /// `CT_device`.
    #[must_use]
    pub fn effective_ops(&self, tier: ExecTier, params: &CostParams) -> u64 {
        let scan_ops = self.storage_bytes as f64 * params.scan_ops_per_byte;
        let copies = match tier {
            ExecTier::Native => 0,
            ExecTier::CompiledCopyElim => {
                self.copy_bytes.saturating_sub(self.eliminable_copy_bytes)
            }
            ExecTier::Interpreted | ExecTier::Compiled => self.copy_bytes,
        };
        let base = self.compute_ops as f64 + scan_ops + copies as f64 * params.copy_ops_per_byte;
        let total = match tier {
            ExecTier::Interpreted => base * (1.0 + params.dispatch_overhead),
            _ => base,
        };
        total.round() as u64
    }

    /// Marks `bytes` of boundary-copy traffic, optionally eliminable.
    pub fn add_copy(&mut self, bytes: u64, eliminable: bool) {
        self.copy_bytes += bytes;
        if eliminable {
            self.eliminable_copy_bytes += bytes;
        }
    }
}

impl Add for LineCost {
    type Output = LineCost;
    fn add(self, rhs: LineCost) -> LineCost {
        LineCost {
            compute_ops: self.compute_ops + rhs.compute_ops,
            storage_bytes: self.storage_bytes + rhs.storage_bytes,
            bytes_in: self.bytes_in + rhs.bytes_in,
            bytes_out: self.bytes_out + rhs.bytes_out,
            copy_bytes: self.copy_bytes + rhs.copy_bytes,
            eliminable_copy_bytes: self.eliminable_copy_bytes + rhs.eliminable_copy_bytes,
            calls: self.calls + rhs.calls,
        }
    }
}

impl AddAssign for LineCost {
    fn add_assign(&mut self, rhs: LineCost) {
        *self = *self + rhs;
    }
}

impl Sum for LineCost {
    fn sum<I: Iterator<Item = LineCost>>(iter: I) -> LineCost {
        iter.fold(LineCost::zero(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> LineCost {
        LineCost {
            compute_ops: 1000,
            storage_bytes: 0,
            bytes_in: 800,
            bytes_out: 80,
            copy_bytes: 100,
            eliminable_copy_bytes: 100,
            calls: 2,
        }
    }

    #[test]
    fn tier_ladder_is_monotonic() {
        let c = cost();
        let p = CostParams::paper_default();
        let native = c.effective_ops(ExecTier::Native, &p);
        let elim = c.effective_ops(ExecTier::CompiledCopyElim, &p);
        let compiled = c.effective_ops(ExecTier::Compiled, &p);
        let interp = c.effective_ops(ExecTier::Interpreted, &p);
        assert!(native <= elim && elim <= compiled && compiled < interp);
        // Full elimination => parity with native.
        assert_eq!(native, elim);
    }

    #[test]
    fn partial_elimination_leaves_residual() {
        let mut c = cost();
        c.eliminable_copy_bytes = 40;
        let p = CostParams::paper_default();
        let elim = c.effective_ops(ExecTier::CompiledCopyElim, &p);
        let native = c.effective_ops(ExecTier::Native, &p);
        assert!(elim > native);
        let expected = 1000 + (60.0 * p.copy_ops_per_byte).round() as u64;
        assert_eq!(elim, expected);
    }

    #[test]
    fn interpreted_applies_dispatch_surcharge() {
        let c = LineCost {
            compute_ops: 1000,
            ..LineCost::zero()
        };
        let p = CostParams {
            dispatch_overhead: 0.5,
            ..CostParams::paper_default()
        };
        assert_eq!(c.effective_ops(ExecTier::Interpreted, &p), 1500);
        assert_eq!(c.effective_ops(ExecTier::Compiled, &p), 1000);
    }

    #[test]
    fn scan_ops_charged_in_all_tiers() {
        let c = LineCost {
            storage_bytes: 1000,
            ..LineCost::zero()
        };
        let p = CostParams {
            scan_ops_per_byte: 0.5,
            ..CostParams::paper_default()
        };
        assert_eq!(c.effective_ops(ExecTier::Native, &p), 500);
    }

    #[test]
    fn add_copy_tracks_eliminability() {
        let mut c = LineCost::zero();
        c.add_copy(100, true);
        c.add_copy(50, false);
        assert_eq!(c.copy_bytes, 150);
        assert_eq!(c.eliminable_copy_bytes, 100);
    }

    #[test]
    fn costs_sum_componentwise() {
        let total: LineCost = [cost(), cost()].into_iter().sum();
        assert_eq!(total.compute_ops, 2000);
        assert_eq!(total.calls, 4);
        assert_eq!(total.bytes_in, 1600);
    }
}
