//! Deterministic data-parallel kernel engine.
//!
//! The paper's CSD executes offloaded kernels on 8× ARM Cortex-A72 cores;
//! this module is the executable counterpart of the aggregate
//! `cores × ipc × freq × parallel_efficiency` service rate modelled in
//! `csd-sim`. The design rule that makes parallelism safe to reproduce:
//!
//! 1. **The chunk grid depends only on data shape.** Work is cut into
//!    fixed-budget chunks ([`CHUNK_ELEMS`] input elements each) — never
//!    into `threads` pieces — so the same input yields the same chunks at
//!    1, 2, 4, or 8 threads.
//! 2. **Workers grab chunks via an atomic cursor.** Which thread runs
//!    which chunk is scheduling noise; the per-chunk results are slotted
//!    by chunk index, not by worker.
//! 3. **Reductions combine per-chunk partials in ascending chunk order.**
//!    Floating-point addition is reassociated only along chunk
//!    boundaries, which are thread-independent — so sums, dots, norms,
//!    centroids, and rank vectors are bit-identical across thread counts.
//!
//! Inputs below [`ParallelPolicy::min_parallel_len`] never engage the
//! chunked path at all (including at `threads = 1`), keeping the original
//! serial fast path for small arrays.

use crate::pool;
use crate::simd;
use isp_obs::{SpanKind, Tracer};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Fixed chunk budget, in input elements of work per chunk. The grid is
/// derived from this and the data shape alone — never from the thread
/// count — which is what keeps chunked results identical at 1..=8 threads.
pub const CHUNK_ELEMS: usize = 4096;

/// Default [`ParallelPolicy::min_parallel_len`]: total input elements
/// below which a kernel keeps its untouched serial fast path.
pub const DEFAULT_MIN_PARALLEL_LEN: usize = 8192;

/// Most threads a policy may request (the submitting thread plus the
/// pool's helper cap).
pub const MAX_THREADS: usize = pool::MAX_HELPERS + 1;

/// Validated data-parallel execution policy for kernel calls.
///
/// Execution-only: like fault and recovery options it is excluded from
/// plan-cache fingerprints, and sampling always runs serial. `threads`
/// decides who executes chunks; `min_parallel_len` (together with the
/// fixed [`CHUNK_ELEMS`] budget) decides what the chunks are — so two
/// policies that differ only in `threads` produce bit-identical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelPolicy {
    /// Worker count including the calling thread; `1` means serial.
    pub threads: usize,
    /// Total input elements below which a kernel stays on its serial
    /// fast path (chunking — and its reassociated reductions — never
    /// engages below this, at any thread count).
    pub min_parallel_len: usize,
}

impl Default for ParallelPolicy {
    fn default() -> Self {
        Self::serial()
    }
}

impl ParallelPolicy {
    /// The serial policy: one thread, default engagement threshold.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_parallel_len: DEFAULT_MIN_PARALLEL_LEN,
        }
    }

    /// A policy with `threads` workers and the default engagement
    /// threshold. Not validated; call [`Self::validate`] at the
    /// execution door.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            min_parallel_len: DEFAULT_MIN_PARALLEL_LEN,
        }
    }

    /// Builds a validated policy.
    pub fn new(threads: usize, min_parallel_len: usize) -> Result<Self, String> {
        let policy = Self {
            threads,
            min_parallel_len,
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Checks the policy is executable: `1..=MAX_THREADS` threads and a
    /// nonzero engagement threshold.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(format!(
                "parallel policy: threads must be in 1..={MAX_THREADS}, got {}",
                self.threads
            ));
        }
        if self.min_parallel_len == 0 {
            return Err("parallel policy: min_parallel_len must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Live per-engine counters (atomics so `&ParEngine` can count from any
/// worker). Cloning snapshots the current values into fresh atomics.
#[derive(Debug, Default)]
pub struct ParStats {
    par_calls: AtomicU64,
    serial_calls: AtomicU64,
    chunks: AtomicU64,
    stolen_chunks: AtomicU64,
}

impl Clone for ParStats {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let nondet = self.nondet();
        Self {
            par_calls: AtomicU64::new(snap.par_calls),
            serial_calls: AtomicU64::new(snap.serial_calls),
            chunks: AtomicU64::new(snap.chunks),
            stolen_chunks: AtomicU64::new(nondet.stolen_chunks),
        }
    }
}

impl ParStats {
    fn snapshot(&self) -> ParStatsSnapshot {
        ParStatsSnapshot {
            par_calls: self.par_calls.load(Ordering::Relaxed),
            serial_calls: self.serial_calls.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
        }
    }

    fn nondet(&self) -> ParStatsNondet {
        ParStatsNondet {
            stolen_chunks: self.stolen_chunks.load(Ordering::Relaxed),
        }
    }
}

/// Counter snapshot recorded into run reports.
///
/// Holds only the counters that derive from the thread-independent chunk
/// grid, so `Eq` is derived and two same-input runs compare equal at any
/// thread count. Scheduling-dependent counters live in
/// [`ParStatsNondet`], reachable via [`ParEngine::nondet`] — previously
/// `stolen_chunks` sat in this struct and was excluded from a hand-written
/// `PartialEq` by convention only, which silently broke `Eq`/`Hash`
/// consistency for any container keyed on snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParStatsSnapshot {
    /// Kernel calls that engaged the chunked path.
    pub par_calls: u64,
    /// Kernel calls that stayed on the serial fast path.
    pub serial_calls: u64,
    /// Total chunks executed across all engaged calls.
    pub chunks: u64,
}

/// Scheduling-dependent counters, deliberately kept out of
/// [`ParStatsSnapshot`] so snapshot equality stays deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParStatsNondet {
    /// Chunks executed by pool helpers rather than the submitting thread
    /// (deterministically zero at `threads = 1`; scheduling noise above).
    pub stolen_chunks: u64,
}

/// The chunk size, in work items, for items costing `elems_per_item`
/// input elements each. Depends only on the fixed budget and the
/// per-item cost — never on the thread count.
#[must_use]
pub fn chunk_items(elems_per_item: usize) -> usize {
    (CHUNK_ELEMS / elems_per_item.max(1)).max(1)
}

/// A policy plus counters: the handle kernels execute through.
#[derive(Debug, Clone, Default)]
pub struct ParEngine {
    policy: ParallelPolicy,
    stats: ParStats,
    tracer: Tracer,
}

impl ParEngine {
    /// An engine running `policy`.
    #[must_use]
    pub fn new(policy: ParallelPolicy) -> Self {
        Self {
            policy,
            stats: ParStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer; engaged kernel calls then record `kernel.par`
    /// spans (from the submitting thread only — helper scheduling never
    /// touches the trace) and publish `kernel.*` counters.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default). Kernels use it to
    /// publish kernel-level counters — e.g. the decode kernel's
    /// `kernel.decode.*` byte and codec counters — without threading a
    /// second handle through [`crate::builtins::KernelCtx`].
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A fresh serial engine.
    #[must_use]
    pub fn serial() -> Self {
        Self::new(ParallelPolicy::serial())
    }

    /// A shared serial engine for compatibility call sites that have no
    /// engine of their own (its counters are shared and never asserted).
    #[must_use]
    pub fn serial_ref() -> &'static ParEngine {
        static SERIAL: OnceLock<ParEngine> = OnceLock::new();
        SERIAL.get_or_init(ParEngine::serial)
    }

    /// The policy this engine runs.
    #[must_use]
    pub fn policy(&self) -> ParallelPolicy {
        self.policy
    }

    /// Current deterministic counter values.
    #[must_use]
    pub fn stats(&self) -> ParStatsSnapshot {
        self.stats.snapshot()
    }

    /// Current scheduling-dependent counters (steal attribution). Kept
    /// separate so [`Self::stats`] snapshots compare `Eq` across thread
    /// counts.
    #[must_use]
    pub fn nondet(&self) -> ParStatsNondet {
        self.stats.nondet()
    }

    /// Runs `f` once per chunk of `0..items` and returns the per-chunk
    /// results **in ascending chunk order**, or `None` when the total
    /// work (`items × elems_per_item`) is below the policy's engagement
    /// threshold — callers then take their untouched serial fast path.
    ///
    /// `f` receives `(chunk_index, item_range)`. The chunk grid depends
    /// only on the data shape; the thread count only decides who runs
    /// the chunks, so the returned vector is identical at any `threads`.
    pub fn map_chunks<R, F>(&self, items: usize, elems_per_item: usize, f: F) -> Option<Vec<R>>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let work = items.saturating_mul(elems_per_item.max(1));
        if items == 0 || work < self.policy.min_parallel_len {
            self.stats.serial_calls.fetch_add(1, Ordering::Relaxed);
            self.tracer.counter_add("kernel.serial_calls", 1);
            return None;
        }
        let chunk = chunk_items(elems_per_item);
        let n_chunks = items.div_ceil(chunk);
        self.stats.par_calls.fetch_add(1, Ordering::Relaxed);
        self.stats
            .chunks
            .fetch_add(n_chunks as u64, Ordering::Relaxed);
        self.tracer.counter_add("kernel.par_calls", 1);
        self.tracer.counter_add("kernel.chunks", n_chunks as u64);
        let span = self.tracer.begin_with(
            "kernel.par",
            SpanKind::Kernel,
            None,
            vec![
                ("items".to_string(), items.into()),
                ("elems_per_item".to_string(), elems_per_item.into()),
                ("chunks".to_string(), n_chunks.into()),
                ("threads".to_string(), self.policy.threads.into()),
            ],
        );
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let stolen = AtomicU64::new(0);
        let body = |helper: bool| {
            let mut grabbed = 0u64;
            loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk;
                let hi = items.min(lo + chunk);
                let out = f(c, lo..hi);
                *slots[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                if helper {
                    grabbed += 1;
                }
            }
            if grabbed > 0 {
                stolen.fetch_add(grabbed, Ordering::Relaxed);
            }
        };
        let helpers = self.policy.threads.saturating_sub(1).min(n_chunks - 1);
        pool::run_parallel(helpers, &body);
        self.tracer.end(span, None);
        self.stats
            .stolen_chunks
            .fetch_add(stolen.load(Ordering::Relaxed), Ordering::Relaxed);
        Some(
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .expect("the cursor hands every chunk to exactly one worker")
                })
                .collect(),
        )
    }

    /// Chunk-ordered sum of `f(x)` over `data` (serial fallback below
    /// the engagement threshold). The engaged in-chunk body runs the
    /// [`crate::simd`] lane kernel — bit-identical at every thread count
    /// because the chunk grid and the in-chunk lane order are both fixed
    /// by shape alone.
    pub fn sum_by<F>(&self, data: &[f64], f: F) -> f64
    where
        F: Fn(f64) -> f64 + Sync,
    {
        match self.map_chunks(data.len(), 1, |_, r| simd::sum8_by(&data[r], &f)) {
            Some(partials) => partials.into_iter().sum(),
            None => data.iter().map(|x| f(*x)).sum(),
        }
    }

    /// Chunk-ordered sum of `data`.
    pub fn sum(&self, data: &[f64]) -> f64 {
        self.sum_by(data, |x| x)
    }

    /// Chunk-ordered fold of `data` with `g` starting from `init`
    /// (`g` must be associative-enough for the caller, e.g. min/max).
    pub fn fold<G>(&self, data: &[f64], init: f64, g: G) -> f64
    where
        G: Fn(f64, f64) -> f64 + Sync,
    {
        match self.map_chunks(data.len(), 1, |_, r| {
            data[r].iter().fold(init, |acc, x| g(acc, *x))
        }) {
            Some(partials) => partials.into_iter().fold(init, &g),
            None => data.iter().fold(init, |acc, x| g(acc, *x)),
        }
    }

    /// Chunk-ordered dot product; caller guarantees equal lengths. The
    /// engaged in-chunk body runs the [`crate::simd`] lane kernel.
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self.map_chunks(a.len(), 1, |_, r| simd::dot8(&a[r.clone()], &b[r])) {
            Some(partials) => partials.into_iter().sum(),
            None => a.iter().zip(b).map(|(x, y)| x * y).sum(),
        }
    }

    /// Chunk-ordered minimum of `data` (`+inf` on empty input). The
    /// engaged path runs the [`crate::simd`] lane kernel per chunk and
    /// combines chunk partials with `f64::min` in chunk order; the
    /// serial fallback is the exact `fold(+inf, f64::min)` this call
    /// replaces at `reduce("minv")` call sites, so below-threshold
    /// results are byte-for-byte unchanged.
    #[must_use]
    pub fn min(&self, data: &[f64]) -> f64 {
        match self.map_chunks(data.len(), 1, |_, r| simd::min8(&data[r], f64::INFINITY)) {
            Some(partials) => partials.into_iter().fold(f64::INFINITY, f64::min),
            None => data.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        }
    }

    /// Chunk-ordered maximum of `data` (`-inf` on empty input); the
    /// mirror of [`Self::min`].
    #[must_use]
    pub fn max(&self, data: &[f64]) -> f64 {
        match self.map_chunks(data.len(), 1, |_, r| {
            simd::max8(&data[r], f64::NEG_INFINITY)
        }) {
            Some(partials) => partials.into_iter().fold(f64::NEG_INFINITY, f64::max),
            None => data.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
        }
    }

    /// Element-wise map over `data`, chunked; `None` below the
    /// engagement threshold (callers map serially). Concatenation in
    /// chunk order makes the output bit-identical to a serial map.
    pub fn map_elems<F>(&self, data: &[f64], f: F) -> Option<Vec<f64>>
    where
        F: Fn(f64) -> f64 + Sync,
    {
        self.map_chunks(data.len(), 1, |_, r| {
            data[r].iter().map(|x| f(*x)).collect::<Vec<f64>>()
        })
        .map(|parts| parts.concat())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 97) as f64 * 0.25 - 11.0).collect()
    }

    fn engine(threads: usize) -> ParEngine {
        ParEngine::new(ParallelPolicy::new(threads, 1024).expect("valid policy"))
    }

    #[test]
    fn policy_validation_rejects_bad_values() {
        assert!(ParallelPolicy::new(0, 100).is_err());
        assert!(ParallelPolicy::new(MAX_THREADS + 1, 100).is_err());
        assert!(ParallelPolicy::new(4, 0).is_err());
        assert!(ParallelPolicy::new(1, 1).is_ok());
        assert!(ParallelPolicy::new(MAX_THREADS, 1).is_ok());
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::serial());
    }

    #[test]
    fn chunk_grid_depends_only_on_shape() {
        assert_eq!(chunk_items(1), CHUNK_ELEMS);
        assert_eq!(chunk_items(0), CHUNK_ELEMS);
        assert_eq!(chunk_items(64), CHUNK_ELEMS / 64);
        assert_eq!(chunk_items(CHUNK_ELEMS * 10), 1);
        // Same shape → same number of chunks, at any thread count.
        for threads in [1, 2, 4, 8] {
            let e = engine(threads);
            let parts = e.map_chunks(10_000, 1, |c, r| (c, r)).expect("engaged");
            assert_eq!(parts.len(), 10_000usize.div_ceil(CHUNK_ELEMS));
            for (i, (c, r)) in parts.iter().enumerate() {
                assert_eq!(*c, i);
                assert_eq!(r.start, i * CHUNK_ELEMS);
            }
        }
    }

    #[test]
    fn below_threshold_returns_none_and_counts_serial() {
        let e = engine(8);
        assert!(e.map_chunks::<(), _>(100, 1, |_, _| ()).is_none());
        let stats = e.stats();
        assert_eq!(stats.par_calls, 0);
        assert_eq!(stats.serial_calls, 1);
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn reductions_are_bit_identical_across_thread_counts() {
        let xs = data(50_000);
        let ys = data(50_000);
        let reference = engine(1);
        let r_sum = reference.sum(&xs);
        let r_dot = reference.dot(&xs, &ys);
        let r_min = reference.fold(&xs, f64::INFINITY, f64::min);
        let r_sq = reference.sum_by(&xs, |x| x * x);
        for threads in [2, 4, 8] {
            let e = engine(threads);
            assert_eq!(e.sum(&xs).to_bits(), r_sum.to_bits(), "sum @ {threads}");
            assert_eq!(
                e.dot(&xs, &ys).to_bits(),
                r_dot.to_bits(),
                "dot @ {threads}"
            );
            assert_eq!(
                e.fold(&xs, f64::INFINITY, f64::min).to_bits(),
                r_min.to_bits(),
                "min @ {threads}"
            );
            assert_eq!(
                e.sum_by(&xs, |x| x * x).to_bits(),
                r_sq.to_bits(),
                "sumsq @ {threads}"
            );
        }
    }

    #[test]
    fn map_elems_matches_serial_map_exactly() {
        let xs = data(20_000);
        let serial: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        for threads in [1, 2, 8] {
            let e = engine(threads);
            let par = e.map_elems(&xs, |x| x.exp()).expect("engaged");
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn stolen_chunks_are_zero_at_one_thread() {
        let e = engine(1);
        let _ = e.sum(&data(30_000));
        assert!(e.stats().par_calls >= 1);
        assert_eq!(e.nondet().stolen_chunks, 0);
    }

    #[test]
    fn snapshots_compare_equal_across_thread_counts() {
        // Satellite: the snapshot holds only grid-derived counters, so the
        // derived `Eq` (and `Hash`) hold across 1, 2, and 8 threads; steal
        // attribution is reachable only through the separate nondet view.
        let xs = data(200_000);
        let run = |threads: usize| {
            let e = engine(threads);
            let _ = e.sum(&xs);
            let _ = e.dot(&xs, &xs);
            let _ = e.map_elems(&xs, |x| x + 1.0);
            (e.stats(), e.nondet())
        };
        let (ref_stats, ref_nondet) = run(1);
        assert_eq!(ref_nondet.stolen_chunks, 0);
        assert!(ref_stats.par_calls >= 3);
        let mut keyed = std::collections::HashSet::new();
        for threads in [1, 2, 8] {
            let (stats, _) = run(threads);
            assert_eq!(stats, ref_stats, "threads={threads}");
            keyed.insert(stats);
        }
        // Eq/Hash consistency: all three snapshots collapse to one key.
        assert_eq!(keyed.len(), 1);
    }

    #[test]
    fn worker_panic_propagates_to_the_submitter() {
        let e = engine(2);
        let xs = data(30_000);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.map_chunks(xs.len(), 1, |c, _| {
                assert!(c != 1, "chunk 1 detonates");
                0u8
            })
        }));
        assert!(caught.is_err());
        // The engine (and shared pool) keep working afterwards.
        assert!(e.sum(&xs).is_finite());
    }

    #[test]
    fn cloned_stats_are_independent() {
        let e = engine(1);
        let _ = e.sum(&data(30_000));
        let cloned = e.clone();
        let before = cloned.stats();
        let _ = e.sum(&data(30_000));
        assert_eq!(cloned.stats(), before);
        assert!(e.stats().par_calls > before.par_calls);
    }
}
