//! Gradient-boosted decision-tree forests (the LightGBM stand-in).
//!
//! The paper's LightGBM workload scores a large feature table against a
//! trained model. We reproduce the data-parallel inference path: a
//! [`Forest`] of binary decision trees evaluated row-by-row, summing leaf
//! values across trees. Training is out of scope (the paper only measures
//! inference over stored data), so forests are constructed directly —
//! typically pseudo-randomly by the workload generator.

use crate::error::{LangError, Result};
use std::fmt;
use std::sync::Arc;

/// One node of a decision tree in array form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeNode {
    /// Feature column this node splits on.
    pub feature: u32,
    /// Split threshold: `x[feature] < threshold` goes left.
    pub threshold: f64,
    /// Index of the left child, or `u32::MAX` for a leaf.
    pub left: u32,
    /// Index of the right child, or `u32::MAX` for a leaf.
    pub right: u32,
    /// Leaf value (only meaningful when this is a leaf).
    pub value: f64,
}

impl TreeNode {
    /// Sentinel child index marking a leaf.
    pub const LEAF: u32 = u32::MAX;

    /// Whether this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.left == Self::LEAF && self.right == Self::LEAF
    }

    /// Constructs a leaf.
    #[must_use]
    pub fn leaf(value: f64) -> Self {
        TreeNode {
            feature: 0,
            threshold: 0.0,
            left: Self::LEAF,
            right: Self::LEAF,
            value,
        }
    }

    /// Constructs an internal split node.
    #[must_use]
    pub fn split(feature: u32, threshold: f64, left: u32, right: u32) -> Self {
        TreeNode {
            feature,
            threshold,
            left,
            right,
            value: 0.0,
        }
    }
}

/// One binary decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    /// Builds a tree; node 0 is the root.
    ///
    /// # Errors
    ///
    /// Returns an error if the tree is empty or any child index is out of
    /// bounds / not strictly forward (which would allow cycles).
    pub fn new(nodes: Vec<TreeNode>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(LangError::runtime("a tree needs at least one node"));
        }
        for (i, n) in nodes.iter().enumerate() {
            if !n.is_leaf() {
                for child in [n.left, n.right] {
                    if child == TreeNode::LEAF {
                        return Err(LangError::runtime(format!(
                            "node {i} mixes leaf and split children"
                        )));
                    }
                    let child = child as usize;
                    if child >= nodes.len() || child <= i {
                        return Err(LangError::runtime(format!(
                            "node {i} has invalid child {child}"
                        )));
                    }
                }
            }
        }
        Ok(Tree { nodes })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for a constructed tree).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Scores one feature row, returning the reached leaf's value and the
    /// number of nodes visited.
    ///
    /// Missing features (index beyond the row) read as `0.0`.
    #[must_use]
    pub fn score(&self, features: &[f64]) -> (f64, u32) {
        let mut idx = 0usize;
        let mut visited = 0u32;
        loop {
            let node = &self.nodes[idx];
            visited += 1;
            if node.is_leaf() {
                return (node.value, visited);
            }
            let x = features.get(node.feature as usize).copied().unwrap_or(0.0);
            idx = if x < node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// The nodes in array form (node 0 is the root). Exposed for
    /// serialization; rebuild with [`Tree::new`] so validation reruns.
    #[must_use]
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Maximum root-to-leaf depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        fn go(nodes: &[TreeNode], idx: usize) -> u32 {
            let n = &nodes[idx];
            if n.is_leaf() {
                1
            } else {
                1 + go(nodes, n.left as usize).max(go(nodes, n.right as usize))
            }
        }
        go(&self.nodes, 0)
    }
}

/// An additive ensemble of trees.
#[derive(Debug, Clone, PartialEq)]
pub struct Forest {
    trees: Arc<Vec<Tree>>,
    features: u32,
}

impl Forest {
    /// Builds a forest over `features` feature columns.
    ///
    /// # Errors
    ///
    /// Returns an error if `trees` is empty.
    pub fn new(trees: Vec<Tree>, features: u32) -> Result<Self> {
        if trees.is_empty() {
            return Err(LangError::runtime("a forest needs at least one tree"));
        }
        Ok(Forest {
            trees: Arc::new(trees),
            features,
        })
    }

    /// Number of trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Number of feature columns the model expects.
    #[must_use]
    pub fn feature_count(&self) -> u32 {
        self.features
    }

    /// The ensemble's trees. Exposed for serialization; rebuild with
    /// [`Forest::new`] so validation reruns.
    #[must_use]
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Total node count across all trees.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.trees.iter().map(Tree::len).sum()
    }

    /// Mean tree depth (used for analytic per-row cost).
    #[must_use]
    pub fn mean_depth(&self) -> f64 {
        let total: u32 = self.trees.iter().map(Tree::depth).sum();
        f64::from(total) / self.trees.len() as f64
    }

    /// Model size in bytes (each node: 4 + 8 + 4 + 4 + 8).
    #[must_use]
    pub fn virtual_bytes(&self) -> u64 {
        self.node_count() as u64 * 28
    }

    /// Scores one feature row: the sum of all trees' leaf values, plus
    /// total nodes visited.
    #[must_use]
    pub fn score(&self, features: &[f64]) -> (f64, u32) {
        let mut acc = 0.0;
        let mut visited = 0;
        for t in self.trees.iter() {
            let (v, n) = t.score(features);
            acc += v;
            visited += n;
        }
        (acc, visited)
    }
}

impl fmt::Display for Forest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "forest[{} trees, {} nodes]",
            self.tree_count(),
            self.node_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump(feature: u32, threshold: f64, lo: f64, hi: f64) -> Tree {
        Tree::new(vec![
            TreeNode::split(feature, threshold, 1, 2),
            TreeNode::leaf(lo),
            TreeNode::leaf(hi),
        ])
        .expect("stump")
    }

    #[test]
    fn stump_scores_both_sides() {
        let t = stump(0, 0.5, -1.0, 1.0);
        assert_eq!(t.score(&[0.2]).0, -1.0);
        assert_eq!(t.score(&[0.7]).0, 1.0);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn forest_sums_trees() {
        let f = Forest::new(vec![stump(0, 0.5, -1.0, 1.0), stump(1, 10.0, 5.0, 7.0)], 2)
            .expect("forest");
        let (score, visited) = f.score(&[0.9, 3.0]);
        assert_eq!(score, 1.0 + 5.0);
        assert_eq!(visited, 4);
        assert_eq!(f.node_count(), 6);
        assert!((f.mean_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_feature_reads_zero() {
        let t = stump(5, 0.5, -1.0, 1.0);
        // Feature 5 is absent => 0.0 < 0.5 => left.
        assert_eq!(t.score(&[9.0]).0, -1.0);
    }

    #[test]
    fn invalid_children_rejected() {
        // Child pointing backwards (cycle risk).
        let e = Tree::new(vec![TreeNode::split(0, 0.5, 0, 1), TreeNode::leaf(1.0)]);
        assert!(e.is_err());
        // Child out of range.
        let e = Tree::new(vec![TreeNode::split(0, 0.5, 1, 9)]);
        assert!(e.is_err());
        // Empty forest.
        assert!(Forest::new(vec![], 1).is_err());
    }

    #[test]
    fn virtual_bytes_counts_nodes() {
        let f = Forest::new(vec![stump(0, 0.5, 0.0, 1.0)], 1).expect("forest");
        assert_eq!(f.virtual_bytes(), 3 * 28);
    }
}
