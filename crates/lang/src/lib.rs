//! # alang — a line-oriented interpreted language with a cost model
//!
//! ALang is this reproduction's stand-in for Python (and its compiled
//! Cython form) in the ActivePy system (DAC 2023). It deliberately mirrors
//! the properties the paper relies on:
//!
//! * **One statement per line**, each a single-entry-single-exit region —
//!   the unit ActivePy assigns to host or CSD (§III-B).
//! * **Bulk kernels behind library boundaries** ([`builtins`]), like NumPy:
//!   calls marshal arguments and materialize results, which is where the
//!   interpreter overhead the paper measures (41 % over C) comes from.
//! * **Per-line profiling** ([`interp`]): execution time surrogates
//!   (operation counts), stored bytes, input/output volumes — what
//!   `line_profiler` collects during ActivePy's sampling phase.
//! * **A compile path** ([`compile`]): Cython-style lowering plus the
//!   redundant-copy elimination pass ([`copyelim`]) that closes the gap to
//!   native code (§III-C0c, §V).
//!
//! Bulk values carry a *logical* (paper-scale) size next to their small
//! materialized data, so selectivity, sparsity, and tree depth stay
//! data-dependent while data volumes match the paper's Table I.
//!
//! ```
//! use alang::builtins::Storage;
//! use alang::interp::Interpreter;
//! use alang::value::Value;
//!
//! let mut storage = Storage::new();
//! storage.insert("v", Value::from(vec![1.0, 2.0, 3.0]));
//! let program = alang::parser::parse("a = scan('v')\ns = sum(a * 2)\n")?;
//! let mut interp = Interpreter::new(&storage);
//! let records = interp.run(&program, &[])?;
//! assert_eq!(interp.var("s").expect("s").as_num()?, 12.0);
//! assert_eq!(records.len(), 2);
//! # Ok::<(), alang::error::LangError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod copyelim;
pub mod cost;
pub mod error;
pub mod forest;
pub mod interp;
pub mod lower;
pub mod matrix;
pub mod par;
pub mod parser;
mod pool;
pub mod shard;
pub mod simd;
pub mod table;
pub mod token;
pub mod value;

pub use ast::Program;
pub use builtins::Storage;
pub use bytecode::{ExecBackend, LoweredProgram, Vm};
pub use compile::CompiledProgram;
pub use cost::{CostParams, ExecTier, LineCost};
pub use error::LangError;
pub use interp::Interpreter;
pub use par::{ParEngine, ParStatsNondet, ParStatsSnapshot, ParallelPolicy};
pub use shard::{ShardAnalysis, ShardMap, ShardStrategy};
pub use value::Value;

#[cfg(test)]
mod tests {
    #[test]
    fn key_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Value>();
        assert_send_sync::<crate::Storage>();
        assert_send_sync::<crate::Program>();
        assert_send_sync::<crate::CompiledProgram>();
    }
}
