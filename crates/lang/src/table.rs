//! Columnar tables.
//!
//! The TPC-H workloads operate on columnar relations (`lineitem`, `part`).
//! A [`Table`] owns named [`Column`]s of equal length; string-typed columns
//! are dictionary-encoded (4-byte codes plus a small dictionary), which is
//! both how real columnar engines store them and what keeps the simulated
//! data volumes honest.
//!
//! Like every bulk value in ALang, a table distinguishes its *actual* row
//! count (the rows materialized in memory, kept laptop-small) from its
//! *logical* row count (the paper-scale size used for all cost accounting).

use crate::error::{LangError, Result};
use crate::par::ParEngine;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit floats (8 bytes/row).
    F64(Arc<Vec<f64>>),
    /// 64-bit integers (8 bytes/row).
    I64(Arc<Vec<i64>>),
    /// Dictionary-encoded strings: 4-byte codes into `dict`.
    Dict {
        /// Per-row dictionary codes.
        codes: Arc<Vec<u32>>,
        /// The dictionary, indexed by code.
        dict: Arc<Vec<String>>,
    },
}

impl Column {
    /// Number of materialized rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per row of this column's physical encoding.
    #[must_use]
    pub fn bytes_per_row(&self) -> u64 {
        match self {
            Column::F64(_) | Column::I64(_) => 8,
            Column::Dict { .. } => 4,
        }
    }

    /// A short type name for diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::F64(_) => "f64",
            Column::I64(_) => "i64",
            Column::Dict { .. } => "dict",
        }
    }

    /// Gathers the rows selected by `keep` into a new column.
    #[must_use]
    pub fn gather(&self, keep: &[bool]) -> Column {
        match self {
            Column::F64(v) => Column::F64(Arc::new(
                v.iter()
                    .zip(keep)
                    .filter(|(_, k)| **k)
                    .map(|(x, _)| *x)
                    .collect(),
            )),
            Column::I64(v) => Column::I64(Arc::new(
                v.iter()
                    .zip(keep)
                    .filter(|(_, k)| **k)
                    .map(|(x, _)| *x)
                    .collect(),
            )),
            Column::Dict { codes, dict } => Column::Dict {
                codes: Arc::new(
                    codes
                        .iter()
                        .zip(keep)
                        .filter(|(_, k)| **k)
                        .map(|(c, _)| *c)
                        .collect(),
                ),
                dict: Arc::clone(dict),
            },
        }
    }

    /// [`Self::gather`] executed through the data-parallel engine: row
    /// chunks are gathered independently and concatenated in chunk order,
    /// which reproduces the serial gather exactly.
    #[must_use]
    pub fn gather_with(&self, keep: &[bool], par: &ParEngine) -> Column {
        fn chunked<T: Copy + Send + Sync>(
            rows: &[T],
            keep: &[bool],
            par: &ParEngine,
        ) -> Option<Vec<T>> {
            par.map_chunks(rows.len(), 1, |_, r| {
                rows[r.clone()]
                    .iter()
                    .zip(&keep[r])
                    .filter(|(_, k)| **k)
                    .map(|(x, _)| *x)
                    .collect::<Vec<T>>()
            })
            .map(|parts| parts.concat())
        }
        match self {
            Column::F64(v) => match chunked(v, keep, par) {
                Some(out) => Column::F64(Arc::new(out)),
                None => self.gather(keep),
            },
            Column::I64(v) => match chunked(v, keep, par) {
                Some(out) => Column::I64(Arc::new(out)),
                None => self.gather(keep),
            },
            Column::Dict { codes, dict } => match chunked(codes, keep, par) {
                Some(out) => Column::Dict {
                    codes: Arc::new(out),
                    dict: Arc::clone(dict),
                },
                None => self.gather(keep),
            },
        }
    }
}

/// A columnar relation with a logical row count.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    columns: BTreeMap<String, Column>,
    rows: usize,
    logical_rows: u64,
}

impl Table {
    /// Builds a table from `(name, column)` pairs whose logical size equals
    /// the materialized size.
    ///
    /// # Errors
    ///
    /// Returns an error if columns have differing lengths or the list is
    /// empty.
    pub fn new(columns: Vec<(String, Column)>) -> Result<Self> {
        let rows = columns
            .first()
            .map(|(_, c)| c.len())
            .ok_or_else(|| LangError::runtime("a table needs at least one column"))?;
        Self::with_logical_rows(columns, rows as u64)
    }

    /// Builds a table whose materialized rows represent `logical_rows`
    /// paper-scale rows.
    ///
    /// # Errors
    ///
    /// Returns an error if columns have differing lengths, the list is
    /// empty, or `logical_rows` is smaller than the materialized count.
    pub fn with_logical_rows(columns: Vec<(String, Column)>, logical_rows: u64) -> Result<Self> {
        let mut map = BTreeMap::new();
        let mut rows: Option<usize> = None;
        for (name, col) in columns {
            match rows {
                None => rows = Some(col.len()),
                Some(r) if r == col.len() => {}
                Some(r) => {
                    return Err(LangError::runtime(format!(
                        "column `{name}` has {} rows, expected {r}",
                        col.len()
                    )))
                }
            }
            map.insert(name, col);
        }
        let rows = rows.ok_or_else(|| LangError::runtime("a table needs at least one column"))?;
        if logical_rows < rows as u64 {
            return Err(LangError::runtime(format!(
                "logical rows {logical_rows} smaller than materialized rows {rows}"
            )));
        }
        Ok(Table {
            columns: map,
            rows,
            logical_rows,
        })
    }

    /// Materialized row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Paper-scale row count.
    #[must_use]
    pub fn logical_rows(&self) -> u64 {
        self.logical_rows
    }

    /// Ratio `logical / materialized` (1.0 for unscaled tables).
    #[must_use]
    pub fn scale_ratio(&self) -> f64 {
        if self.rows == 0 {
            1.0
        } else {
            self.logical_rows as f64 / self.rows as f64
        }
    }

    /// Column names in sorted order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// Number of columns.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Looks up a column.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing column.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns.get(name).ok_or_else(|| {
            LangError::runtime(format!(
                "no column `{name}` (have: {})",
                self.columns.keys().cloned().collect::<Vec<_>>().join(", ")
            ))
        })
    }

    /// Physical bytes per logical row across all columns.
    #[must_use]
    pub fn bytes_per_row(&self) -> u64 {
        self.columns.values().map(Column::bytes_per_row).sum()
    }

    /// Paper-scale data volume of the whole table.
    #[must_use]
    pub fn virtual_bytes(&self) -> u64 {
        self.logical_rows * self.bytes_per_row()
    }

    /// Filters rows by a boolean mask of materialized length; the result's
    /// logical row count shrinks by the *measured* selectivity, which is how
    /// data-dependent volume reduction stays faithful at paper scale.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask length differs from the row count.
    pub fn filter(&self, keep: &[bool]) -> Result<Table> {
        if keep.len() != self.rows {
            return Err(LangError::runtime(format!(
                "mask length {} does not match table rows {}",
                keep.len(),
                self.rows
            )));
        }
        let kept = keep.iter().filter(|k| **k).count();
        let selectivity = if self.rows == 0 {
            0.0
        } else {
            kept as f64 / self.rows as f64
        };
        let logical = (self.logical_rows as f64 * selectivity)
            .round()
            .max(kept as f64) as u64;
        let columns: Vec<(String, Column)> = self
            .columns
            .iter()
            .map(|(n, c)| (n.clone(), c.gather(keep)))
            .collect();
        Table::with_logical_rows(columns, logical)
    }

    /// [`Self::filter`] executed through the data-parallel engine: each
    /// column's gather is chunked by rows. Gathering is row-local, so the
    /// result is bit-identical to the serial filter at any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask length differs from the row count.
    pub fn filter_with(&self, keep: &[bool], par: &ParEngine) -> Result<Table> {
        if keep.len() != self.rows {
            return Err(LangError::runtime(format!(
                "mask length {} does not match table rows {}",
                keep.len(),
                self.rows
            )));
        }
        let kept = keep.iter().filter(|k| **k).count();
        let selectivity = if self.rows == 0 {
            0.0
        } else {
            kept as f64 / self.rows as f64
        };
        let logical = (self.logical_rows as f64 * selectivity)
            .round()
            .max(kept as f64) as u64;
        let columns: Vec<(String, Column)> = self
            .columns
            .iter()
            .map(|(n, c)| (n.clone(), c.gather_with(keep, par)))
            .collect();
        Table::with_logical_rows(columns, logical)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "table[{} cols x {} rows (logical {})]",
            self.columns.len(),
            self.rows,
            self.logical_rows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::with_logical_rows(
            vec![
                (
                    "qty".into(),
                    Column::F64(Arc::new(vec![1.0, 30.0, 10.0, 50.0])),
                ),
                ("flag".into(), Column::I64(Arc::new(vec![0, 1, 0, 1]))),
                (
                    "kind".into(),
                    Column::Dict {
                        codes: Arc::new(vec![0, 1, 0, 1]),
                        dict: Arc::new(vec!["PROMO".into(), "OTHER".into()]),
                    },
                ),
            ],
            4000,
        )
        .expect("table")
    }

    #[test]
    fn construction_and_metadata() {
        let t = t();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.logical_rows(), 4000);
        assert!((t.scale_ratio() - 1000.0).abs() < 1e-9);
        assert_eq!(t.column_count(), 3);
        // 8 + 8 + 4 bytes per row.
        assert_eq!(t.bytes_per_row(), 20);
        assert_eq!(t.virtual_bytes(), 4000 * 20);
    }

    #[test]
    fn mismatched_columns_rejected() {
        let e = Table::new(vec![
            ("a".into(), Column::F64(Arc::new(vec![1.0]))),
            ("b".into(), Column::F64(Arc::new(vec![1.0, 2.0]))),
        ])
        .unwrap_err();
        assert!(format!("{e}").contains("rows"));
    }

    #[test]
    fn empty_table_rejected() {
        assert!(Table::new(vec![]).is_err());
    }

    #[test]
    fn filter_scales_logical_rows_by_selectivity() {
        let t = t();
        let filtered = t.filter(&[true, false, true, false]).expect("filter");
        assert_eq!(filtered.rows(), 2);
        // Selectivity 0.5 => logical 2000.
        assert_eq!(filtered.logical_rows(), 2000);
        match filtered.column("qty").expect("qty") {
            Column::F64(v) => assert_eq!(**v, vec![1.0, 10.0]),
            other => panic!("wrong column type {}", other.type_name()),
        }
    }

    #[test]
    fn filter_preserves_dictionary() {
        let t = t();
        let filtered = t.filter(&[false, true, false, true]).expect("filter");
        match filtered.column("kind").expect("kind") {
            Column::Dict { codes, dict } => {
                assert_eq!(**codes, vec![1, 1]);
                assert_eq!(dict[1], "OTHER");
            }
            other => panic!("wrong column type {}", other.type_name()),
        }
    }

    #[test]
    fn filter_rejects_bad_mask_length() {
        assert!(t().filter(&[true]).is_err());
    }

    #[test]
    fn missing_column_error_lists_alternatives() {
        let e = t().column("nope").unwrap_err();
        assert!(format!("{e}").contains("qty"));
    }

    #[test]
    fn parallel_filter_is_bitwise_equal_to_serial() {
        let n = 20_000usize;
        let table = Table::with_logical_rows(
            vec![
                (
                    "qty".into(),
                    Column::F64(Arc::new((0..n).map(|i| (i % 50) as f64).collect())),
                ),
                (
                    "flag".into(),
                    Column::I64(Arc::new((0..n).map(|i| (i % 3) as i64).collect())),
                ),
                (
                    "kind".into(),
                    Column::Dict {
                        codes: Arc::new((0..n).map(|i| (i % 2) as u32).collect()),
                        dict: Arc::new(vec!["PROMO".into(), "OTHER".into()]),
                    },
                ),
            ],
            1_000_000,
        )
        .expect("table");
        let keep: Vec<bool> = (0..n).map(|i| i % 7 != 0).collect();
        let serial = table.filter(&keep).expect("serial");
        for threads in [1, 2, 8] {
            let par =
                ParEngine::new(crate::par::ParallelPolicy::new(threads, 1024).expect("policy"));
            let filtered = table.filter_with(&keep, &par).expect("par");
            assert_eq!(filtered, serial, "threads={threads}");
            assert!(par.stats().par_calls >= 1, "chunked path engaged");
        }
    }

    #[test]
    fn logical_smaller_than_actual_rejected() {
        let e =
            Table::with_logical_rows(vec![("a".into(), Column::F64(Arc::new(vec![1.0, 2.0])))], 1)
                .unwrap_err();
        assert!(format!("{e}").contains("logical"));
    }
}
