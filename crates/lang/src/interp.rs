//! The ALang interpreter with per-line cost profiling.
//!
//! The interpreter executes one line at a time (the paper's unit of
//! assignment) and reports a [`LineCost`] for each execution: analytic
//! compute operations, stored bytes streamed, the line's input/output data
//! volumes, and library-boundary copy traffic. This per-line record is what
//! the paper gathers with `line_profiler` during the sampling phase
//! (§III-A) and what the execution engine charges to the simulated
//! hardware.
//!
//! Whether a line's copies are *eliminable* is decided by the static pass
//! in [`crate::copyelim`]; the interpreter is told per line and tags copy
//! traffic accordingly.

use crate::ast::{BinOp, Expr, Line, Program, UnOp};
use crate::builtins::{self, weights, KernelCtx, Storage};
use crate::cost::LineCost;
use crate::error::{LangError, Result};
use crate::par::{ParEngine, ParStatsNondet, ParStatsSnapshot, ParallelPolicy};
use crate::value::{ArrayVal, BoolArrayVal, Value};
use std::collections::BTreeMap;

/// The record produced by executing one line once.
#[derive(Debug, Clone, PartialEq)]
pub struct LineRecord {
    /// The line's index (SESE region id).
    pub index: usize,
    /// The variable defined.
    pub target: String,
    /// Measured cost.
    pub cost: LineCost,
}

/// An interpreter instance holding variable bindings.
#[derive(Debug, Clone)]
pub struct Interpreter<'a> {
    storage: &'a Storage,
    vars: BTreeMap<String, Value>,
    par: ParEngine,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over the given storage with the default
    /// (serial) kernel policy.
    #[must_use]
    pub fn new(storage: &'a Storage) -> Self {
        Self::with_policy(storage, ParallelPolicy::default())
    }

    /// Creates an interpreter whose builtin kernels execute under
    /// `policy` (validate it at the door; see [`ParallelPolicy::validate`]).
    #[must_use]
    pub fn with_policy(storage: &'a Storage, policy: ParallelPolicy) -> Self {
        Interpreter {
            storage,
            vars: BTreeMap::new(),
            par: ParEngine::new(policy),
        }
    }

    /// Chunk counters accumulated by this interpreter's kernels.
    #[must_use]
    pub fn par_stats(&self) -> ParStatsSnapshot {
        self.par.stats()
    }

    /// Scheduling-dependent kernel counters (steal attribution).
    #[must_use]
    pub fn par_nondet(&self) -> ParStatsNondet {
        self.par.nondet()
    }

    /// Attaches a tracer to the kernel engine; engaged kernel calls then
    /// record `kernel.par` spans and publish `kernel.*` counters.
    pub fn set_tracer(&mut self, tracer: isp_obs::Tracer) {
        self.par.set_tracer(tracer);
    }

    /// Current value of a variable, if defined.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Paper-scale bytes of a variable (0 if undefined).
    #[must_use]
    pub fn var_bytes(&self, name: &str) -> u64 {
        self.vars.get(name).map_or(0, Value::virtual_bytes)
    }

    /// All defined variable names.
    pub fn var_names(&self) -> impl Iterator<Item = &str> {
        self.vars.keys().map(String::as_str)
    }

    /// Executes one line: evaluates the right-hand side, binds the target,
    /// and returns the measured cost.
    ///
    /// `copy_elim` marks whether the code generator may eliminate this
    /// line's boundary copies (see [`crate::copyelim::eliminable_lines`]).
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error, annotated with the line index.
    pub fn exec_line(&mut self, line: &Line, copy_elim: bool) -> Result<LineCost> {
        let mut cost = LineCost::zero();
        // D_in: the volumes of the variables this line reads.
        for name in line.inputs() {
            cost.bytes_in += self.var_bytes(name);
        }
        let value = self.eval(&line.expr, &mut cost, copy_elim, line.index)?;
        cost.bytes_out = value.virtual_bytes();
        self.vars.insert(line.target.clone(), value);
        Ok(cost)
    }

    /// Runs a whole program, returning one record per line.
    ///
    /// `copy_elim` must have one entry per line (use
    /// [`crate::copyelim::eliminable_lines`]), or be empty to disable
    /// elimination everywhere.
    ///
    /// # Errors
    ///
    /// Stops at the first failing line.
    pub fn run(&mut self, program: &Program, copy_elim: &[bool]) -> Result<Vec<LineRecord>> {
        let mut out = Vec::with_capacity(program.len());
        for line in program.lines() {
            let elim = copy_elim.get(line.index).copied().unwrap_or(false);
            let cost = self.exec_line(line, elim)?;
            out.push(LineRecord {
                index: line.index,
                target: line.target.clone(),
                cost,
            });
        }
        Ok(out)
    }

    fn eval(&self, expr: &Expr, cost: &mut LineCost, elim: bool, line_no: usize) -> Result<Value> {
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Ident(name) => {
                self.vars
                    .get(name)
                    .cloned()
                    .ok_or_else(|| LangError::UnknownVariable {
                        line: line_no + 1,
                        name: name.clone(),
                    })
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, cost, elim, line_no)?;
                let out = apply_unary(*op, &v)?;
                charge_elementwise(cost, &out, weights::ELEM);
                charge_temp(cost, &out, elim);
                Ok(out)
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, cost, elim, line_no)?;
                let r = self.eval(rhs, cost, elim, line_no)?;
                let out = apply_binary(*op, &l, &r)?;
                let weight = if op.is_comparison() {
                    weights::ELEM - 1
                } else {
                    weights::ELEM
                };
                charge_elementwise(cost, &out, weight);
                charge_temp(cost, &out, elim);
                Ok(out)
            }
            Expr::Call { name, args } => {
                // Resolve the name once and dispatch through the kernel's
                // function pointer, like the lowered VM does.
                let Some(kernel) = builtins::kernel_id(name) else {
                    return Err(LangError::UnknownFunction {
                        line: line_no + 1,
                        name: name.clone(),
                    });
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, cost, elim, line_no)?);
                }
                let ctx = KernelCtx {
                    storage: self.storage,
                    par: &self.par,
                };
                let out = kernel.invoke_in(&argv, &ctx)?;
                cost.compute_ops += out.ops;
                cost.storage_bytes += out.storage_bytes;
                cost.calls += 1;
                if kernel.charges_copy() && out.value.is_bulk() {
                    // The wrapper materializes its result in a fresh buffer
                    // before converting/handing it back (arguments pass by
                    // reference, as in CPython; the temps are what the
                    // copy-elimination optimization removes, §III-C0c).
                    cost.add_copy(out.value.virtual_bytes(), elim);
                }
                Ok(out.value)
            }
        }
    }
}

pub(crate) fn charge_elementwise(cost: &mut LineCost, out: &Value, weight: u64) {
    cost.compute_ops += out.logical_elems() * weight;
}

pub(crate) fn charge_temp(cost: &mut LineCost, out: &Value, elim: bool) {
    if out.is_bulk() {
        cost.add_copy(out.virtual_bytes(), elim);
    }
}

pub(crate) fn apply_unary(op: UnOp, v: &Value) -> Result<Value> {
    match (op, v) {
        (UnOp::Neg, Value::Num(n)) => Ok(Value::Num(-n)),
        (UnOp::Neg, Value::Array(a)) => Ok(Value::Array(ArrayVal::with_logical(
            a.data().iter().map(|x| -x).collect(),
            a.logical_len(),
        ))),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Not, Value::BoolArray(m)) => Ok(Value::BoolArray(BoolArrayVal::with_logical(
            m.data().iter().map(|b| !b).collect(),
            m.logical_len(),
        ))),
        (op, other) => Err(LangError::type_error(format!(
            "cannot apply {op:?} to {}",
            other.type_name()
        ))),
    }
}

pub(crate) fn apply_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => numeric_binary(op, l, r),
        Lt | Le | Gt | Ge | Eq | Ne => comparison_binary(op, l, r),
        And | Or => logical_binary(op, l, r),
    }
}

fn arith(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        _ => unreachable!("arith called with {op:?}"),
    }
}

fn numeric_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Num(a), Value::Num(b)) => Ok(Value::Num(arith(op, *a, *b))),
        (Value::Array(a), Value::Num(b)) => Ok(Value::Array(ArrayVal::with_logical(
            a.data().iter().map(|x| arith(op, *x, *b)).collect(),
            a.logical_len(),
        ))),
        (Value::Num(a), Value::Array(b)) => Ok(Value::Array(ArrayVal::with_logical(
            b.data().iter().map(|x| arith(op, *a, *x)).collect(),
            b.logical_len(),
        ))),
        (Value::Array(a), Value::Array(b)) => {
            if a.len() != b.len() {
                return Err(LangError::runtime(format!(
                    "elementwise {} on arrays of length {} and {}",
                    op.symbol(),
                    a.len(),
                    b.len()
                )));
            }
            Ok(Value::Array(ArrayVal::with_logical(
                a.data()
                    .iter()
                    .zip(b.data())
                    .map(|(x, y)| arith(op, *x, *y))
                    .collect(),
                a.logical_len().max(b.logical_len()),
            )))
        }
        (l, r) => Err(LangError::type_error(format!(
            "cannot apply {} to {} and {}",
            op.symbol(),
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn cmp(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("cmp called with {op:?}"),
    }
}

fn comparison_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Num(a), Value::Num(b)) => Ok(Value::Bool(cmp(op, *a, *b))),
        (Value::Array(a), Value::Num(b)) => Ok(Value::BoolArray(BoolArrayVal::with_logical(
            a.data().iter().map(|x| cmp(op, *x, *b)).collect(),
            a.logical_len(),
        ))),
        (Value::Num(a), Value::Array(b)) => Ok(Value::BoolArray(BoolArrayVal::with_logical(
            b.data().iter().map(|x| cmp(op, *a, *x)).collect(),
            b.logical_len(),
        ))),
        (Value::Array(a), Value::Array(b)) => {
            if a.len() != b.len() {
                return Err(LangError::runtime(format!(
                    "comparison {} on arrays of length {} and {}",
                    op.symbol(),
                    a.len(),
                    b.len()
                )));
            }
            Ok(Value::BoolArray(BoolArrayVal::with_logical(
                a.data()
                    .iter()
                    .zip(b.data())
                    .map(|(x, y)| cmp(op, *x, *y))
                    .collect(),
                a.logical_len().max(b.logical_len()),
            )))
        }
        (l, r) => Err(LangError::type_error(format!(
            "cannot compare {} and {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn logical_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    let f = |a: bool, b: bool| match op {
        BinOp::And => a && b,
        BinOp::Or => a || b,
        _ => unreachable!("logical called with {op:?}"),
    };
    match (l, r) {
        (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(f(*a, *b))),
        (Value::BoolArray(a), Value::BoolArray(b)) => {
            if a.len() != b.len() {
                return Err(LangError::runtime(format!(
                    "logical {} on masks of length {} and {}",
                    op.symbol(),
                    a.len(),
                    b.len()
                )));
            }
            Ok(Value::BoolArray(BoolArrayVal::with_logical(
                a.data()
                    .iter()
                    .zip(b.data())
                    .map(|(x, y)| f(*x, *y))
                    .collect(),
                a.logical_len().max(b.logical_len()),
            )))
        }
        (Value::BoolArray(a), Value::Bool(b)) => Ok(Value::BoolArray(BoolArrayVal::with_logical(
            a.data().iter().map(|x| f(*x, *b)).collect(),
            a.logical_len(),
        ))),
        (Value::Bool(a), Value::BoolArray(b)) => Ok(Value::BoolArray(BoolArrayVal::with_logical(
            b.data().iter().map(|x| f(*a, *x)).collect(),
            b.logical_len(),
        ))),
        (l, r) => Err(LangError::type_error(format!(
            "cannot apply {} to {} and {}",
            op.symbol(),
            l.type_name(),
            r.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::table::{Column, Table};
    use std::sync::Arc;

    fn lineitem_storage() -> Storage {
        let mut st = Storage::new();
        let table = Table::with_logical_rows(
            vec![
                (
                    "qty".into(),
                    Column::F64(Arc::new(vec![10.0, 30.0, 5.0, 40.0])),
                ),
                (
                    "price".into(),
                    Column::F64(Arc::new(vec![100.0, 200.0, 50.0, 400.0])),
                ),
            ],
            4_000_000,
        )
        .expect("table");
        st.insert("lineitem", Value::Table(table));
        st
    }

    #[test]
    fn q6_like_pipeline_computes_correctly() {
        let st = lineitem_storage();
        let prog = parse(
            "t = scan('lineitem')\n\
             q = col(t, 'qty')\n\
             m = q < 24\n\
             p = col(t, 'price')\n\
             s = select(p, m)\n\
             r = sum(s)\n",
        )
        .expect("parse");
        let mut interp = Interpreter::new(&st);
        let records = interp.run(&prog, &[]).expect("run");
        assert_eq!(records.len(), 6);
        // qty < 24 keeps rows 0 and 2: 100 + 50 = 150, extrapolated by the
        // 1e6 scale ratio.
        let r = interp.var("r").expect("r").as_num().expect("num");
        assert!((r - 150.0 * 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn per_line_costs_have_expected_shape() {
        let st = lineitem_storage();
        let prog = parse("t = scan('lineitem')\nq = col(t, 'qty')\nm = q < 24\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        let rec = interp.run(&prog, &[]).expect("run");
        // scan: storage bytes, no copies, no inputs.
        assert_eq!(rec[0].cost.storage_bytes, 4_000_000 * 16);
        assert_eq!(rec[0].cost.copy_bytes, 0);
        assert_eq!(rec[0].cost.bytes_in, 0);
        assert_eq!(rec[0].cost.bytes_out, 4_000_000 * 16);
        // col: reads the table (bytes_in = table), produces an array.
        assert_eq!(rec[1].cost.bytes_in, 4_000_000 * 16);
        assert_eq!(rec[1].cost.bytes_out, 4_000_000 * 8);
        assert!(
            rec[1].cost.copy_bytes > 0,
            "library boundary copies counted"
        );
        // compare: produces a mask of 1 byte per logical row.
        assert_eq!(rec[2].cost.bytes_out, 4_000_000);
        assert!(rec[2].cost.compute_ops >= 3 * 4_000_000);
    }

    #[test]
    fn copy_elim_flag_marks_copies_eliminable() {
        let st = lineitem_storage();
        let prog = parse("t = scan('lineitem')\nq = col(t, 'qty')\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        let rec = interp.run(&prog, &[true, true]).expect("run");
        assert_eq!(rec[1].cost.copy_bytes, rec[1].cost.eliminable_copy_bytes);
        let mut interp2 = Interpreter::new(&st);
        let rec2 = interp2.run(&prog, &[false, false]).expect("run");
        assert_eq!(rec2[1].cost.eliminable_copy_bytes, 0);
    }

    #[test]
    fn scalar_arithmetic_and_logic() {
        let st = Storage::new();
        let prog =
            parse("a = 2 + 3 * 4\nb = a >= 14\nc = b and (a != 15)\nd = -a / 2\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        interp.run(&prog, &[]).expect("run");
        assert_eq!(interp.var("a").expect("a").as_num().expect("n"), 14.0);
        assert!(interp.var("b").expect("b").as_bool().expect("b"));
        assert!(interp.var("c").expect("c").as_bool().expect("b"));
        assert_eq!(interp.var("d").expect("d").as_num().expect("n"), -7.0);
    }

    #[test]
    fn array_scalar_broadcasting() {
        let mut st = Storage::new();
        st.insert("v", Value::from(vec![1.0, 2.0, 3.0]));
        let prog = parse("a = scan('v')\nb = a * 2 + 1\nm = 2 < a\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        interp.run(&prog, &[]).expect("run");
        assert_eq!(
            interp.var("b").expect("b").as_array().expect("arr").data(),
            &[3.0, 5.0, 7.0]
        );
        assert_eq!(
            interp
                .var("m")
                .expect("m")
                .as_bool_array()
                .expect("mask")
                .data(),
            &[false, false, true]
        );
    }

    #[test]
    fn unknown_variable_reports_line() {
        let st = Storage::new();
        let prog = parse("a = 1\nb = zzz + 1\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        let e = interp.run(&prog, &[]).unwrap_err();
        assert!(matches!(e, LangError::UnknownVariable { line: 2, .. }));
    }

    #[test]
    fn unknown_function_reports_line() {
        let st = Storage::new();
        let prog = parse("a = np_dot(1, 2)\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        let e = interp.run(&prog, &[]).unwrap_err();
        assert!(matches!(e, LangError::UnknownFunction { line: 1, .. }));
    }

    #[test]
    fn length_mismatch_is_runtime_error() {
        let mut st = Storage::new();
        st.insert("a", Value::from(vec![1.0, 2.0]));
        st.insert("b", Value::from(vec![1.0, 2.0, 3.0]));
        let prog = parse("x = scan('a')\ny = scan('b')\nz = x + y\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        assert!(interp.run(&prog, &[]).is_err());
    }

    #[test]
    fn type_errors_name_both_types() {
        let mut st = Storage::new();
        st.insert("a", Value::from(vec![1.0]));
        let prog = parse("x = scan('a')\ny = x and 1\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        let msg = format!("{}", interp.run(&prog, &[]).unwrap_err());
        assert!(msg.contains("array") && msg.contains("num"), "{msg}");
    }

    #[test]
    fn redefinition_overwrites_binding() {
        let st = Storage::new();
        let prog = parse("a = 1\na = a + 1\na = a + 1\n").expect("parse");
        let mut interp = Interpreter::new(&st);
        interp.run(&prog, &[]).expect("run");
        assert_eq!(interp.var("a").expect("a").as_num().expect("n"), 3.0);
    }
}
