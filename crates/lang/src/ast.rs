//! Abstract syntax for ALang programs.
//!
//! A program is a flat sequence of lines, each `target = expression`. One
//! line is the paper's unit of task assignment: a single-entry-single-exit
//! region (§III-B). Expressions are side-effect-free; all data flow is
//! through named variables, which is what makes the per-line input/output
//! volumes of Eq. 1 well defined.

use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// The surface syntax of the operator.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// Whether the operator yields a boolean mask / scalar.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical negation.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Variable reference.
    Ident(String),
    /// Builtin call.
    Call {
        /// Function name (resolved against the builtin registry).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Collects the free variables the expression reads, in name order.
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Num(_) | Expr::Str(_) => {}
            Expr::Ident(name) => {
                out.insert(name.clone());
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_free_vars(out);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_free_vars(out);
                rhs.collect_free_vars(out);
            }
            Expr::Unary { expr, .. } => expr.collect_free_vars(out),
        }
    }

    /// Counts [`Expr::Call`] nodes in the tree — the "library call
    /// boundaries" the copy-elimination optimization targets.
    #[must_use]
    pub fn call_count(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Str(_) | Expr::Ident(_) => 0,
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::call_count).sum::<usize>(),
            Expr::Binary { lhs, rhs, .. } => lhs.call_count() + rhs.call_count(),
            Expr::Unary { expr, .. } => expr.call_count(),
        }
    }

    /// Whether the expression contains a `scan(...)` or `scan_raw(...)`
    /// (stored-data access).
    #[must_use]
    pub fn contains_scan(&self) -> bool {
        match self {
            Expr::Num(_) | Expr::Str(_) | Expr::Ident(_) => false,
            Expr::Call { name, args } => {
                name == "scan" || name == "scan_raw" || args.iter().any(Expr::contains_scan)
            }
            Expr::Binary { lhs, rhs, .. } => lhs.contains_scan() || rhs.contains_scan(),
            Expr::Unary { expr, .. } => expr.contains_scan(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Str(s) => write!(f, "\"{s}\""),
            Expr::Ident(name) => write!(f, "{name}"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(not {expr})"),
            },
        }
    }
}

/// One program line: `target = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    /// 0-based index within the program (also the SESE region id).
    pub index: usize,
    /// The variable the line defines.
    pub target: String,
    /// The right-hand side.
    pub expr: Expr,
    /// The original source text (for reports).
    pub source: String,
    /// Free variables of `expr`, computed once at construction.
    inputs: BTreeSet<String>,
    /// Whether `expr` contains a `scan(...)`, computed once at construction.
    scans_storage: bool,
}

impl Line {
    /// Builds a line, precomputing its input set and storage-access flag so
    /// per-line execution never re-walks the expression tree.
    #[must_use]
    pub fn new(index: usize, target: String, expr: Expr, source: String) -> Self {
        let inputs = expr.free_vars();
        let scans_storage = expr.contains_scan();
        Line {
            index,
            target,
            expr,
            source,
            inputs,
            scans_storage,
        }
    }

    /// Variables this line reads (cached at parse time).
    #[must_use]
    pub fn inputs(&self) -> &BTreeSet<String> {
        &self.inputs
    }

    /// The variable this line defines (its only output).
    #[must_use]
    pub fn outputs(&self) -> &str {
        &self.target
    }

    /// Whether this line touches stored data (cached at parse time).
    #[must_use]
    pub fn accesses_storage(&self) -> bool {
        self.scans_storage
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.target, self.expr)
    }
}

/// A parsed ALang program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    lines: Vec<Line>,
}

impl Program {
    /// Builds a program from parsed lines; use [`crate::parser::parse`] to
    /// obtain one from source text.
    #[must_use]
    pub(crate) fn from_lines(lines: Vec<Line>) -> Self {
        Program { lines }
    }

    /// The program's lines in execution order.
    #[must_use]
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Number of lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the program has no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The line defining `name`, if any (last definition wins).
    #[must_use]
    pub fn def_site(&self, name: &str) -> Option<usize> {
        self.lines
            .iter()
            .rev()
            .find(|l| l.target == name)
            .map(|l| l.index)
    }

    /// Indices of the lines that read variable `name` after line `after`.
    #[must_use]
    pub fn consumers_of(&self, name: &str, after: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for line in &self.lines[after + 1..] {
            if line.inputs().contains(name) {
                out.push(line.index);
            }
            if line.target == name {
                break; // redefinition kills the value
            }
        }
        out
    }

    /// Variables that are live at the boundary *after* line `at`: defined at
    /// or before `at` and read by some later line.
    #[must_use]
    pub fn live_after(&self, at: usize) -> BTreeSet<String> {
        let mut live = BTreeSet::new();
        for line in &self.lines[..=at.min(self.lines.len() - 1)] {
            if !self.consumers_of(&line.target, at).is_empty() {
                live.insert(line.target.clone());
            }
        }
        live
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    const PROG: &str = "\
t = scan('lineitem')
m = col(t, 'qty') < 24
f = filter(t, m)
s = sum(col(f, 'price'))
";

    #[test]
    fn free_vars_are_collected() {
        let p = parse(PROG).expect("parse");
        assert!(p.lines()[1].inputs().contains("t"));
        assert!(p.lines()[3].inputs().contains("f"));
        assert!(p.lines()[0].inputs().is_empty());
    }

    #[test]
    fn scan_detection() {
        let p = parse(PROG).expect("parse");
        assert!(p.lines()[0].accesses_storage());
        assert!(!p.lines()[1].accesses_storage());
    }

    #[test]
    fn def_site_and_consumers() {
        let p = parse(PROG).expect("parse");
        assert_eq!(p.def_site("t"), Some(0));
        assert_eq!(p.def_site("s"), Some(3));
        assert_eq!(p.def_site("zzz"), None);
        assert_eq!(p.consumers_of("t", 0), vec![1, 2]);
        assert_eq!(p.consumers_of("m", 1), vec![2]);
    }

    #[test]
    fn redefinition_kills_liveness() {
        let src = "a = 1\nb = a + 1\na = 2\nc = a + b\n";
        let p = parse(src).expect("parse");
        // Consumers of the first `a` stop at the redefinition on line 2.
        assert_eq!(p.consumers_of("a", 0), vec![1]);
        assert_eq!(p.consumers_of("a", 2), vec![3]);
    }

    #[test]
    fn live_after_boundary() {
        let p = parse(PROG).expect("parse");
        let live = p.live_after(1);
        assert!(live.contains("t"));
        assert!(live.contains("m"));
        // `f`/`s` are not yet defined.
        assert!(!live.contains("f"));
        let live3 = p.live_after(2);
        assert!(live3.contains("f"));
        assert!(!live3.contains("m"), "m has no consumer after line 2");
    }

    #[test]
    fn call_count_counts_nested_calls() {
        let p = parse("x = sum(filter(scan('d'), m))\n").expect("parse");
        assert_eq!(p.lines()[0].expr.call_count(), 3);
    }

    #[test]
    fn display_round_trips_shape() {
        let p = parse(PROG).expect("parse");
        let shown = format!("{p}");
        assert!(shown.contains("filter(t, m)"));
        assert!(shown.contains('<'));
    }
}
