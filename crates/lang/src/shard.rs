//! Sharded data: partitioning bulk values across a fleet of CSDs.
//!
//! A [`ShardMap`] describes how the rows of a workload's stored bulk
//! values are split across `N` devices: contiguous row ranges
//! ([`ShardStrategy::Range`]) or a hash partition of the key space
//! ([`ShardStrategy::Hash`], modeled as a deterministically jittered
//! range partition — row content is synthetic, so only the *sizes* of
//! the hash buckets matter to the cost model). The partition arithmetic
//! is exact: [`ShardMap::slice_u64`] splits any extensive quantity
//! (bytes, rows, operations) so the per-shard slices sum to the total
//! with no remainder, the same discipline the execution engine's
//! `chunk_slice` uses for chunk streaming.
//!
//! [`analyze`] classifies each program line by *rowwise
//! decomposability*: a line whose output is row-aligned with the sharded
//! inputs (elementwise arithmetic, `filter`/`select`, `matmul` against a
//! replicated right-hand side, …) can run per shard; the first line that
//! consumes sharded data any other way — a reduction like `sum` or
//! `group_sum`, a global restructuring like `to_csr` or `sort` — is the
//! **fence**. Lines before the fence scatter across the fleet; the fence
//! and everything after it run on the host over gathered shard results,
//! combined in ascending shard index (the same ordered-reduction rule
//! that keeps [`crate::par`] bit-identical).

use crate::ast::{Expr, Program};
use crate::builtins::Storage;
use crate::table::{Column, Table};
use crate::value::Value;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Minimum logical row count for a stored value to be worth sharding;
/// smaller values (model weights, centroid seeds) are replicated to
/// every device.
pub const SHARD_MIN_ROWS: u64 = 65_536;

/// How rows are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous, near-equal row ranges.
    Range,
    /// Hash partition of the row key space with the given seed; bucket
    /// sizes are deterministic but uneven.
    Hash(u64),
}

/// A partition of `[0, rows)` into `N` shards, plus the set of storage
/// names the partition applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    rows: u64,
    bounds: Vec<u64>,
    strategy: ShardStrategy,
    sharded: BTreeSet<String>,
}

/// splitmix64: the deterministic stream behind hash-bucket jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ShardMap {
    /// An equal range partition of `rows` into `n` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn range(rows: u64, n: usize) -> Self {
        assert!(n > 0, "a shard map needs at least one shard");
        let bounds = (0..=n as u64).map(|s| rows * s / n as u64).collect();
        ShardMap {
            rows,
            bounds,
            strategy: ShardStrategy::Range,
            sharded: BTreeSet::new(),
        }
    }

    /// A hash partition of `rows` into `n` shards: near-equal buckets
    /// with deterministic seed-dependent jitter of up to ±25 % of a
    /// bucket. Falls back to the exact range partition when `rows` is too
    /// small to jitter safely.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn hash(rows: u64, n: usize, seed: u64) -> Self {
        assert!(n > 0, "a shard map needs at least one shard");
        let mut map = ShardMap::range(rows, n);
        map.strategy = ShardStrategy::Hash(seed);
        let jitter_cap = rows / (4 * n as u64);
        if jitter_cap > 0 {
            for (s, b) in map.bounds.iter_mut().enumerate().take(n).skip(1) {
                let r = splitmix64(seed ^ s as u64);
                let j = (r % (2 * jitter_cap + 1)) as i64 - jitter_cap as i64;
                *b = b.saturating_add_signed(j);
            }
        }
        map
    }

    /// Replaces the set of storage names the partition applies to.
    #[must_use]
    pub fn with_sharded_sources<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sharded = names.into_iter().map(Into::into).collect();
        self
    }

    /// Builds a map over `storage`: every row-shardable bulk value
    /// (array, mask, table, or matrix) with at least [`SHARD_MIN_ROWS`]
    /// logical rows is sharded; everything else is replicated. `rows` is
    /// the largest sharded row count — the partition denominator.
    #[must_use]
    pub fn auto(storage: &Storage, n: usize, strategy: ShardStrategy) -> Self {
        let mut names = BTreeSet::new();
        let mut rows = 1u64;
        for name in storage.names() {
            let Ok(value) = storage.get(name) else {
                continue;
            };
            let value_rows = match value {
                Value::Array(a) => a.logical_len(),
                Value::BoolArray(m) => m.logical_len(),
                Value::Table(t) => t.logical_rows(),
                Value::Matrix(m) => m.logical_rows(),
                _ => 0,
            };
            if value_rows >= SHARD_MIN_ROWS {
                names.insert(name.to_owned());
                rows = rows.max(value_rows);
            }
        }
        let map = match strategy {
            ShardStrategy::Range => ShardMap::range(rows, n),
            ShardStrategy::Hash(seed) => ShardMap::hash(rows, n, seed),
        };
        map.with_sharded_sources(names)
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The partition denominator (total logical rows).
    #[must_use]
    pub fn rows_total(&self) -> u64 {
        self.rows
    }

    /// The partition strategy.
    #[must_use]
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Row bounds `[lo, hi)` of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn bounds_of(&self, s: usize) -> (u64, u64) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// Rows owned by shard `s`.
    #[must_use]
    pub fn rows_of(&self, s: usize) -> u64 {
        let (lo, hi) = self.bounds_of(s);
        hi - lo
    }

    /// Shard `s`'s share of the partition, in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self, s: usize) -> f64 {
        if self.rows == 0 {
            if s == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.rows_of(s) as f64 / self.rows as f64
        }
    }

    /// Shard `s`'s exact slice of an extensive quantity `total`: slices
    /// over all shards sum to `total` with no rounding remainder.
    #[must_use]
    pub fn slice_u64(&self, total: u64, s: usize) -> u64 {
        if self.rows == 0 {
            return if s == 0 { total } else { 0 };
        }
        let (lo, hi) = self.bounds_of(s);
        total * hi / self.rows - total * lo / self.rows
    }

    /// Whether stored value `name` is partitioned (vs replicated).
    #[must_use]
    pub fn is_sharded(&self, name: &str) -> bool {
        self.sharded.contains(name)
    }

    /// The partitioned storage names, in sorted order.
    pub fn sharded_sources(&self) -> impl Iterator<Item = &str> {
        self.sharded.iter().map(String::as_str)
    }

    /// FNV-1a over the full placement description — shard count, bounds,
    /// strategy, and sharded names — so two maps that could ever place
    /// data differently never collide in a cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(&self.rows.to_le_bytes());
        for b in &self.bounds {
            mix(&b.to_le_bytes());
        }
        match self.strategy {
            ShardStrategy::Range => mix(b"range"),
            ShardStrategy::Hash(seed) => {
                mix(b"hash");
                mix(&seed.to_le_bytes());
            }
        }
        for name in &self.sharded {
            mix(name.as_bytes());
            mix(&[0]);
        }
        hash
    }

    /// Materializes shard `s`'s slice of `storage`: sharded values keep
    /// only their proportional row block (exact partition arithmetic on
    /// both materialized and logical rows); replicated values are shared
    /// as-is. Concatenating the slices of every shard in ascending order
    /// reproduces the original data bit-identically.
    #[must_use]
    pub fn slice_storage(&self, storage: &Storage, s: usize) -> Storage {
        let mut out = Storage::new();
        for name in storage.names() {
            let Ok(value) = storage.get(name) else {
                continue;
            };
            let sliced = if self.is_sharded(name) {
                self.slice_value(value, s)
            } else {
                value.clone()
            };
            out.insert(name, sliced);
        }
        out
    }

    /// Materialized-row bounds of shard `s` within `len` rows: the same
    /// partition applied to the materialized scale.
    fn mat_bounds(&self, len: usize, s: usize) -> (usize, usize) {
        if self.rows == 0 {
            return if s == 0 { (0, len) } else { (len, len) };
        }
        let (lo, hi) = self.bounds_of(s);
        let l = (len as u64 * lo / self.rows) as usize;
        let h = (len as u64 * hi / self.rows) as usize;
        (l, h)
    }

    fn slice_value(&self, value: &Value, s: usize) -> Value {
        match value {
            Value::Array(a) => {
                let (lo, hi) = self.mat_bounds(a.len(), s);
                let data = a.data()[lo..hi].to_vec();
                let logical = self.slice_u64(a.logical_len(), s).max(data.len() as u64);
                Value::Array(crate::value::ArrayVal::with_logical(data, logical))
            }
            Value::BoolArray(m) => {
                let (lo, hi) = self.mat_bounds(m.len(), s);
                let data = m.data()[lo..hi].to_vec();
                let logical = self.slice_u64(m.logical_len(), s).max(data.len() as u64);
                Value::BoolArray(crate::value::BoolArrayVal::with_logical(data, logical))
            }
            Value::Table(t) => {
                let (lo, hi) = self.mat_bounds(t.rows(), s);
                let columns: Vec<(String, Column)> = t
                    .column_names()
                    .map(|name| {
                        let col = t.column(name).expect("listed column exists");
                        let sliced = match col {
                            Column::F64(v) => Column::F64(Arc::new(v[lo..hi].to_vec())),
                            Column::I64(v) => Column::I64(Arc::new(v[lo..hi].to_vec())),
                            Column::Dict { codes, dict } => Column::Dict {
                                codes: Arc::new(codes[lo..hi].to_vec()),
                                dict: Arc::clone(dict),
                            },
                        };
                        (name.to_owned(), sliced)
                    })
                    .collect();
                let logical = self.slice_u64(t.logical_rows(), s).max((hi - lo) as u64);
                Value::Table(
                    Table::with_logical_rows(columns, logical)
                        .expect("sliced columns stay aligned"),
                )
            }
            Value::Matrix(m) => {
                let (lo, hi) = self.mat_bounds(m.rows(), s);
                let data = m.data()[lo * m.cols()..hi * m.cols()].to_vec();
                let logical = self.slice_u64(m.logical_rows(), s).max((hi - lo) as u64);
                Value::Matrix(
                    crate::matrix::Matrix::with_logical(
                        data,
                        hi - lo,
                        m.cols(),
                        logical,
                        m.logical_cols(),
                    )
                    .expect("sliced row block keeps its shape"),
                )
            }
            // Scalars, CSR graphs, and forest models are never sharded.
            other => other.clone(),
        }
    }
}

/// Rowwise decomposability of one value with respect to a [`ShardMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shardedness {
    /// Row-partitioned across the fleet, aligned with the map.
    Sharded,
    /// Replicated in full on every shard.
    Replicated,
}

/// The scatter/gather structure of a program under a [`ShardMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAnalysis {
    /// Index of the first line that must run on the host over gathered
    /// data (`program.len()` when the whole program is rowwise).
    pub fence: usize,
    /// Per line: whether its output is row-partitioned. `false` for
    /// every line at or after the fence.
    pub line_sharded: Vec<bool>,
    /// Sharded values defined before the fence and consumed at or after
    /// it — the live state the gather phase pulls from every shard, in
    /// ascending definition order (the combine accumulates them in
    /// ascending shard index).
    pub carriers: Vec<String>,
}

/// Elementwise builtins: output rows align with the (any) sharded input.
const ELEMENTWISE: [&str; 7] = ["exp", "log", "sqrt", "erf", "abs", "where", "decode"];

/// Builtins whose output is row-aligned with their *first* argument;
/// remaining arguments must be replicated (the sharded lhs of `matmul`,
/// the points of `kmeans_assign`).
const ROW_FIRST: [&str; 3] = ["matmul", "gemm_batch", "kmeans_assign"];

/// Row-aligned selections: first argument and mask are partitioned by
/// the same map.
const ROW_SELECT: [&str; 3] = ["col", "filter", "select"];

fn class_of(expr: &Expr, sharded_vars: &BTreeSet<String>, map: &ShardMap) -> Option<Shardedness> {
    use Shardedness::{Replicated, Sharded};
    match expr {
        Expr::Num(_) | Expr::Str(_) => Some(Replicated),
        Expr::Ident(name) => Some(if sharded_vars.contains(name) {
            Sharded
        } else {
            Replicated
        }),
        Expr::Unary { expr, .. } => class_of(expr, sharded_vars, map),
        Expr::Binary { lhs, rhs, .. } => {
            // All binary operators are elementwise; a sharded operand
            // keeps the result row-aligned (scalars broadcast).
            let l = class_of(lhs, sharded_vars, map)?;
            let r = class_of(rhs, sharded_vars, map)?;
            Some(if l == Sharded || r == Sharded {
                Sharded
            } else {
                Replicated
            })
        }
        Expr::Call { name, args } => {
            let classes: Option<Vec<Shardedness>> = args
                .iter()
                .map(|a| class_of(a, sharded_vars, map))
                .collect();
            let classes = classes?;
            let any_sharded = classes.contains(&Sharded);
            if name == "scan" || name == "scan_raw" {
                // Encoded datasets are never sharded (ShardMap::auto
                // replicates Value::Encoded), so scan_raw follows the
                // same source-name rule and lands on Replicated.
                return Some(match args.first() {
                    Some(Expr::Str(source)) if map.is_sharded(source) => Sharded,
                    _ => Replicated,
                });
            }
            if ELEMENTWISE.contains(&name.as_str()) {
                return Some(if any_sharded { Sharded } else { Replicated });
            }
            if ROW_SELECT.contains(&name.as_str()) {
                // Row selection follows the first argument; a sharded
                // mask over replicated data has no aligned partition.
                return match classes.first() {
                    Some(Sharded) => Some(Sharded),
                    _ if any_sharded => None,
                    _ => Some(Replicated),
                };
            }
            if ROW_FIRST.contains(&name.as_str()) {
                // Only the row operand may be sharded; a sharded rhs
                // (weights, centroids) would need an all-to-all.
                if classes.iter().skip(1).any(|c| *c == Sharded) {
                    return None;
                }
                return classes.first().copied().or(Some(Replicated));
            }
            if name == "forest_score" {
                // forest_score(model, rows): the model must be replicated.
                if classes.first() == Some(&Sharded) {
                    return None;
                }
                return Some(if classes.get(1) == Some(&Sharded) {
                    Sharded
                } else {
                    Replicated
                });
            }
            // Everything else — reductions (`sum`, `group_sum`, `dot`,
            // `frob`, `gram`, `kmeans_update`, …) and global
            // restructurings (`sort`, `gather`, `to_csr`, `spmv`,
            // `pagerank_step`) — fences when fed sharded data.
            if any_sharded {
                None
            } else {
                Some(Replicated)
            }
        }
    }
}

/// Classifies every line of `program` against `map` and locates the
/// scatter/gather fence.
#[must_use]
pub fn analyze(program: &Program, map: &ShardMap) -> ShardAnalysis {
    let mut sharded_vars: BTreeSet<String> = BTreeSet::new();
    let mut line_sharded = vec![false; program.len()];
    let mut fence = program.len();
    for (i, line) in program.lines().iter().enumerate() {
        match class_of(&line.expr, &sharded_vars, map) {
            Some(Shardedness::Sharded) => {
                line_sharded[i] = true;
                sharded_vars.insert(line.target.clone());
            }
            Some(Shardedness::Replicated) => {
                // Reassignment can turn a previously-sharded name
                // replicated; drop it so later uses read the new class.
                sharded_vars.remove(&line.target);
            }
            None => {
                fence = i;
                break;
            }
        }
    }
    let mut carriers: Vec<String> = Vec::new();
    if fence < program.len() {
        for line in &program.lines()[fence..] {
            for input in line.inputs() {
                let Some(def) = program.def_site(input) else {
                    continue;
                };
                if def < fence && line_sharded[def] && !carriers.contains(input) {
                    carriers.push(input.clone());
                }
            }
        }
        carriers.sort_by_key(|name| program.def_site(name));
    } else if let Some(last) = program.lines().last() {
        // A fully rowwise program still gathers its sharded result.
        if line_sharded[last.index] {
            carriers.push(last.target.clone());
        }
    }
    ShardAnalysis {
        fence,
        line_sharded,
        carriers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::value::{ArrayVal, BoolArrayVal};

    #[test]
    fn range_partition_is_exact_for_awkward_sizes() {
        for rows in [0u64, 1, 7, 1_000_003] {
            for n in [1usize, 2, 3, 4, 8] {
                let map = ShardMap::range(rows, n);
                assert_eq!(map.count(), n);
                let total: u64 = (0..n).map(|s| map.rows_of(s)).sum();
                assert_eq!(total, rows, "rows {rows} across {n}");
                for odd in [1u64, 12_345, u64::from(u32::MAX)] {
                    let sum: u64 = (0..n).map(|s| map.slice_u64(odd, s)).sum();
                    assert_eq!(sum, odd, "slice_u64({odd}) across {n}");
                }
            }
        }
    }

    #[test]
    fn hash_partition_is_jittered_but_still_exact() {
        let map = ShardMap::hash(1_000_000, 4, 42);
        let total: u64 = (0..4).map(|s| map.rows_of(s)).sum();
        assert_eq!(total, 1_000_000);
        let range = ShardMap::range(1_000_000, 4);
        assert_ne!(
            map.bounds, range.bounds,
            "hash buckets should differ from the equal split"
        );
        assert_eq!(
            map.bounds,
            ShardMap::hash(1_000_000, 4, 42).bounds,
            "same seed, same buckets"
        );
        for s in 0..4 {
            // Jitter is bounded: every bucket keeps at least half its
            // equal share.
            assert!(map.rows_of(s) >= 125_000, "bucket {s} collapsed");
        }
    }

    #[test]
    fn fingerprints_distinguish_count_strategy_and_sources() {
        let one = ShardMap::range(1_000_000, 1).with_sharded_sources(["v"]);
        let four = ShardMap::range(1_000_000, 4).with_sharded_sources(["v"]);
        let hash = ShardMap::hash(1_000_000, 4, 7).with_sharded_sources(["v"]);
        let other = ShardMap::range(1_000_000, 4).with_sharded_sources(["w"]);
        let prints = [
            one.fingerprint(),
            four.fingerprint(),
            hash.fingerprint(),
            other.fingerprint(),
        ];
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "maps {i} and {j} collide");
            }
        }
        assert_eq!(four.fingerprint(), four.clone().fingerprint());
    }

    fn storage() -> Storage {
        let mut st = Storage::new();
        st.insert(
            "v",
            Value::Array(ArrayVal::with_logical(
                (0..64).map(f64::from).collect(),
                1_000_000,
            )),
        );
        st.insert(
            "m",
            Value::BoolArray(BoolArrayVal::with_logical(
                (0..64).map(|i| i % 3 == 0).collect(),
                1_000_000,
            )),
        );
        st.insert("k", Value::Num(3.0));
        st
    }

    #[test]
    fn auto_shards_large_bulk_values_only() {
        let map = ShardMap::auto(&storage(), 4, ShardStrategy::Range);
        assert!(map.is_sharded("v"));
        assert!(map.is_sharded("m"));
        assert!(!map.is_sharded("k"));
        assert_eq!(map.rows_total(), 1_000_000);
    }

    #[test]
    fn storage_slices_round_trip_bit_identically() {
        let st = storage();
        for n in [1usize, 2, 3, 4, 8] {
            let map = ShardMap::auto(&st, n, ShardStrategy::Hash(9));
            let slices: Vec<Storage> = (0..n).map(|s| map.slice_storage(&st, s)).collect();
            let mut v_cat: Vec<f64> = Vec::new();
            let mut m_cat: Vec<bool> = Vec::new();
            let mut v_logical = 0u64;
            for slice in &slices {
                let v = slice.get("v").expect("v").as_array().expect("array");
                v_cat.extend_from_slice(v.data());
                v_logical += v.logical_len();
                let m = slice.get("m").expect("m").as_bool_array().expect("mask");
                m_cat.extend_from_slice(m.data());
                // Replicated values are shared untouched.
                assert_eq!(slice.get("k").expect("k"), st.get("k").expect("k"));
            }
            let orig = st.get("v").expect("v").as_array().expect("array");
            assert_eq!(v_cat, orig.data(), "n={n} array rows diverged");
            assert_eq!(v_logical, orig.logical_len(), "n={n} logical rows leak");
            let orig_m = st.get("m").expect("m").as_bool_array().expect("mask");
            assert_eq!(m_cat, orig_m.data(), "n={n} mask rows diverged");
        }
    }

    fn map_for(src_sharded: &[&str]) -> ShardMap {
        ShardMap::range(1_000_000, 4).with_sharded_sources(src_sharded.iter().copied())
    }

    #[test]
    fn elementwise_prefix_fences_at_the_reduction() {
        let p = parse("a = scan('v')\nb = sqrt(a * 2)\nm = b < 3\nc = select(b, m)\ns = sum(c)\n")
            .expect("parse");
        let analysis = analyze(&p, &map_for(&["v"]));
        assert_eq!(analysis.fence, 4, "sum is the first non-rowwise consumer");
        assert_eq!(analysis.line_sharded, vec![true, true, true, true, false]);
        assert_eq!(analysis.carriers, vec!["c".to_owned()]);
    }

    #[test]
    fn matmul_requires_a_replicated_rhs() {
        let p =
            parse("a = scan('v')\nw = scan('w')\ny = matmul(a, w)\nn = frob(y)\n").expect("parse");
        let sharded_lhs = analyze(&p, &map_for(&["v"]));
        assert_eq!(sharded_lhs.fence, 3, "row-block matmul is rowwise");
        assert!(sharded_lhs.line_sharded[2]);
        let sharded_rhs = analyze(&p, &map_for(&["w"]));
        assert_eq!(sharded_rhs.fence, 2, "a sharded rhs needs an all-to-all");
    }

    #[test]
    fn replicated_reductions_do_not_fence() {
        let p = parse("c = scan('centroids')\nspread = frob(c)\n").expect("parse");
        let analysis = analyze(&p, &map_for(&["points"]));
        assert_eq!(analysis.fence, 2, "no sharded data, no fence");
        assert!(analysis.carriers.is_empty());
    }

    #[test]
    fn fully_rowwise_program_carries_its_result() {
        let p = parse("a = scan('v')\nb = a * 2\n").expect("parse");
        let analysis = analyze(&p, &map_for(&["v"]));
        assert_eq!(analysis.fence, 2);
        assert_eq!(analysis.carriers, vec!["b".to_owned()]);
    }

    #[test]
    fn immediate_reduction_fences_at_line_zero() {
        let p = parse("s = sum(scan('v'))\n").expect("parse");
        let analysis = analyze(&p, &map_for(&["v"]));
        assert_eq!(analysis.fence, 0);
        assert!(analysis.carriers.is_empty());
    }
}
