//! The slot-resolved register bytecode the lowering pass targets.
//!
//! This is the reproduction's honest analog of the paper's Cython tier
//! (§III-C): every variable name is resolved to a dense slot index at lower
//! time, per-line input/output slot lists and copy-elimination flags are
//! precomputed, and builtin calls dispatch through [`KernelId`] function
//! pointers instead of re-matching on name strings. The [`Vm`] executes the
//! flat instruction stream and produces [`LineCost`] records byte-identical
//! to the AST-walking [`crate::interp::Interpreter`], which remains the
//! reference implementation behind the differential-testing harness.

use crate::ast::{BinOp, UnOp};
use crate::builtins::{weights, KernelCtx, KernelId, Storage};
use crate::cost::LineCost;
use crate::error::{LangError, Result};
use crate::interp::{apply_binary, apply_unary, charge_elementwise, charge_temp, LineRecord};
use crate::par::{ParEngine, ParStatsNondet, ParStatsSnapshot, ParallelPolicy};
use crate::value::Value;
use std::collections::BTreeMap;

/// Which engine executes ALang lines.
///
/// Both backends produce byte-identical values and [`LineCost`] records
/// (asserted by the differential-testing harness); they differ only in
/// wall-clock. The AST walker remains the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// The tree-walking reference interpreter.
    AstWalk,
    /// The lowered register-bytecode VM.
    #[default]
    Vm,
}

/// One register-style instruction. Operands are slot indices into the VM's
/// register file; `dst` is always written last, so a line may freely read
/// the slot it is about to redefine (`a = a + 1`).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Load constant-pool entry `idx` into `dst`.
    Const {
        /// Destination slot.
        dst: u16,
        /// Constant-pool index.
        idx: u16,
    },
    /// Copy the value of `src` into `dst` (a bare-identifier right-hand
    /// side). Errors if `src` is unbound.
    Copy {
        /// Destination slot.
        dst: u16,
        /// Source slot.
        src: u16,
    },
    /// Assert that a variable slot is bound, raising
    /// [`LangError::UnknownVariable`] otherwise. Emitted at each identifier's
    /// evaluation position so the VM surfaces undefined-variable errors in
    /// exactly the order the tree-walking interpreter would.
    Guard {
        /// The variable slot to check.
        slot: u16,
    },
    /// Apply a unary operator.
    Unary {
        /// Destination slot.
        dst: u16,
        /// The operator.
        op: UnOp,
        /// Operand slot.
        src: u16,
    },
    /// Apply a binary operator.
    Binary {
        /// Destination slot.
        dst: u16,
        /// The operator.
        op: BinOp,
        /// Left operand slot.
        lhs: u16,
        /// Right operand slot.
        rhs: u16,
    },
    /// Invoke a builtin kernel on `args_len` slots starting at `args_start`
    /// in the argument pool.
    Call {
        /// Destination slot.
        dst: u16,
        /// The kernel to dispatch to.
        kernel: KernelId,
        /// Offset into [`LoweredProgram`]'s argument pool.
        args_start: u32,
        /// Number of argument slots.
        args_len: u16,
        /// Whether a bulk result charges library-boundary copy traffic
        /// (precomputed at lower time: every kernel except `scan`).
        charge_copy: bool,
    },
}

/// Per-line execution metadata, precomputed at lower time.
#[derive(Debug, Clone, PartialEq)]
pub struct LineMeta {
    /// The line's index (SESE region id).
    pub index: usize,
    /// The variable the line defines.
    pub target: String,
    /// Slot the line's result is written to.
    pub target_slot: u16,
    /// Deduplicated slots of the variables the line reads, in name order —
    /// the cached analog of walking `line.inputs()` per execution.
    pub input_slots: Vec<u16>,
    /// First instruction of the line (inclusive).
    pub instr_start: u32,
    /// Last instruction of the line (exclusive).
    pub instr_end: u32,
}

/// A program lowered to the register bytecode: flat instruction stream,
/// constant pool, argument pool, and per-line metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredProgram {
    pub(crate) consts: Vec<Value>,
    pub(crate) instrs: Vec<Instr>,
    pub(crate) arg_pool: Vec<u16>,
    pub(crate) metas: Vec<LineMeta>,
    /// Names for every slot; temps get synthetic `%tN` names.
    pub(crate) slot_names: Vec<String>,
    pub(crate) name_to_slot: BTreeMap<String, u16>,
    pub(crate) n_vars: u16,
    pub(crate) n_slots: u16,
    pub(crate) copy_elim: Vec<bool>,
}

impl LoweredProgram {
    /// Number of lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the program has no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Per-line metadata, in execution order.
    #[must_use]
    pub fn metas(&self) -> &[LineMeta] {
        &self.metas
    }

    /// Number of named variable slots.
    #[must_use]
    pub fn var_count(&self) -> usize {
        usize::from(self.n_vars)
    }

    /// Total register-file size (variables plus temporaries).
    #[must_use]
    pub fn reg_count(&self) -> usize {
        usize::from(self.n_slots)
    }

    /// Number of emitted instructions.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// The slot assigned to variable `name`, if it occurs in the program.
    #[must_use]
    pub fn slot_of(&self, name: &str) -> Option<u16> {
        self.name_to_slot.get(name).copied()
    }

    /// The baked per-line copy-elimination flags.
    #[must_use]
    pub fn copy_elim(&self) -> &[bool] {
        &self.copy_elim
    }
}

/// Executes a [`LoweredProgram`] over a register file of [`Value`] slots.
///
/// Mirrors [`crate::interp::Interpreter`]'s observable behavior exactly —
/// same values, same [`LineCost`] records, same errors — while skipping name
/// lookups, per-line input re-walks, and builtin name matching.
#[derive(Debug)]
pub struct Vm<'a> {
    lowered: &'a LoweredProgram,
    storage: &'a Storage,
    par: ParEngine,
    regs: Vec<Option<Value>>,
    argv: Vec<Value>,
}

impl<'a> Vm<'a> {
    /// Creates a VM for `lowered` over the given storage, executing kernels
    /// serially.
    #[must_use]
    pub fn new(lowered: &'a LoweredProgram, storage: &'a Storage) -> Self {
        Self::with_policy(lowered, storage, ParallelPolicy::default())
    }

    /// Creates a VM whose builtin kernels execute under `policy`.
    ///
    /// Values, [`LineCost`] records, and errors are identical for every
    /// valid policy; only wall-clock changes.
    #[must_use]
    pub fn with_policy(
        lowered: &'a LoweredProgram,
        storage: &'a Storage,
        policy: ParallelPolicy,
    ) -> Self {
        Vm {
            lowered,
            storage,
            par: ParEngine::new(policy),
            regs: vec![None; usize::from(lowered.n_slots)],
            argv: Vec::new(),
        }
    }

    /// Chunk counters accumulated by kernel calls so far.
    #[must_use]
    pub fn par_stats(&self) -> ParStatsSnapshot {
        self.par.stats()
    }

    /// Scheduling-dependent kernel counters (steal attribution).
    #[must_use]
    pub fn par_nondet(&self) -> ParStatsNondet {
        self.par.nondet()
    }

    /// Attaches a tracer to the kernel engine; engaged kernel calls then
    /// record `kernel.par` spans and publish `kernel.*` counters.
    pub fn set_tracer(&mut self, tracer: isp_obs::Tracer) {
        self.par.set_tracer(tracer);
    }

    /// Current value of a variable, if defined.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<&Value> {
        let slot = self.lowered.slot_of(name)?;
        self.regs[usize::from(slot)].as_ref()
    }

    /// Paper-scale bytes of a variable (0 if undefined).
    #[must_use]
    pub fn var_bytes(&self, name: &str) -> u64 {
        self.var(name).map_or(0, Value::virtual_bytes)
    }

    /// Executes one line using the lowered copy-elimination flag, returning
    /// the measured cost.
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error, annotated with the line index.
    pub fn exec_line(&mut self, index: usize) -> Result<LineCost> {
        let elim = self.lowered.copy_elim[index];
        self.exec_line_with(index, elim)
    }

    /// Executes one line with an explicit copy-elimination flag.
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error, annotated with the line index.
    pub fn exec_line_with(&mut self, index: usize, elim: bool) -> Result<LineCost> {
        let lowered = self.lowered;
        let meta = &lowered.metas[index];
        let mut cost = LineCost::zero();
        // D_in: the volumes of the variables this line reads.
        for &slot in &meta.input_slots {
            cost.bytes_in += self.regs[usize::from(slot)]
                .as_ref()
                .map_or(0, Value::virtual_bytes);
        }
        for instr in &lowered.instrs[meta.instr_start as usize..meta.instr_end as usize] {
            match instr {
                Instr::Const { dst, idx } => {
                    self.regs[usize::from(*dst)] = Some(lowered.consts[usize::from(*idx)].clone());
                }
                Instr::Copy { dst, src } => {
                    let v = self.read(*src, index)?.clone();
                    self.regs[usize::from(*dst)] = Some(v);
                }
                Instr::Guard { slot } => {
                    self.read(*slot, index)?;
                }
                Instr::Unary { dst, op, src } => {
                    let out = apply_unary(*op, self.read(*src, index)?)?;
                    charge_elementwise(&mut cost, &out, weights::ELEM);
                    charge_temp(&mut cost, &out, elim);
                    self.regs[usize::from(*dst)] = Some(out);
                }
                Instr::Binary { dst, op, lhs, rhs } => {
                    let out = apply_binary(*op, self.read(*lhs, index)?, self.read(*rhs, index)?)?;
                    let weight = if op.is_comparison() {
                        weights::ELEM - 1
                    } else {
                        weights::ELEM
                    };
                    charge_elementwise(&mut cost, &out, weight);
                    charge_temp(&mut cost, &out, elim);
                    self.regs[usize::from(*dst)] = Some(out);
                }
                Instr::Call {
                    dst,
                    kernel,
                    args_start,
                    args_len,
                    charge_copy,
                } => {
                    let mut argv = std::mem::take(&mut self.argv);
                    argv.clear();
                    let end = *args_start as usize + usize::from(*args_len);
                    for &slot in &lowered.arg_pool[*args_start as usize..end] {
                        argv.push(self.read(slot, index)?.clone());
                    }
                    let ctx = KernelCtx {
                        storage: self.storage,
                        par: &self.par,
                    };
                    let out = kernel.invoke_in(&argv, &ctx)?;
                    self.argv = argv;
                    cost.compute_ops += out.ops;
                    cost.storage_bytes += out.storage_bytes;
                    cost.calls += 1;
                    if *charge_copy && out.value.is_bulk() {
                        // The wrapper materializes its result in a fresh
                        // buffer before handing it back; same charge as the
                        // interpreter's library-boundary rule.
                        cost.add_copy(out.value.virtual_bytes(), elim);
                    }
                    self.regs[usize::from(*dst)] = Some(out.value);
                }
            }
        }
        let out = self.regs[usize::from(meta.target_slot)]
            .as_ref()
            .expect("the line's root instruction writes the target slot");
        cost.bytes_out = out.virtual_bytes();
        Ok(cost)
    }

    /// Runs the whole program with the lowered copy-elimination flags,
    /// returning one record per line.
    ///
    /// # Errors
    ///
    /// Stops at the first failing line.
    pub fn run(&mut self) -> Result<Vec<LineRecord>> {
        let n = self.lowered.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let cost = self.exec_line(i)?;
            let meta = &self.lowered.metas[i];
            out.push(LineRecord {
                index: meta.index,
                target: meta.target.clone(),
                cost,
            });
        }
        Ok(out)
    }

    fn read(&self, slot: u16, line_index: usize) -> Result<&Value> {
        self.regs[usize::from(slot)]
            .as_ref()
            .ok_or_else(|| LangError::UnknownVariable {
                line: line_index + 1,
                name: self.lowered.slot_names[usize::from(slot)].clone(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::lower::{lower, lower_with};
    use crate::parser::parse;
    use crate::table::{Column, Table};
    use std::sync::Arc;

    fn lineitem_storage() -> Storage {
        let mut st = Storage::new();
        let table = Table::with_logical_rows(
            vec![
                (
                    "qty".into(),
                    Column::F64(Arc::new(vec![10.0, 30.0, 5.0, 40.0])),
                ),
                (
                    "price".into(),
                    Column::F64(Arc::new(vec![100.0, 200.0, 50.0, 400.0])),
                ),
            ],
            4_000_000,
        )
        .expect("table");
        st.insert("lineitem", Value::Table(table));
        st
    }

    const Q6: &str = "t = scan('lineitem')\n\
                      q = col(t, 'qty')\n\
                      m = q < 24\n\
                      p = col(t, 'price')\n\
                      s = select(p, m)\n\
                      r = sum(s)\n";

    fn assert_vm_matches_interp(src: &str, st: &Storage, copy_elim: &[bool]) {
        let prog = parse(src).expect("parse");
        let mut interp = Interpreter::new(st);
        let ast_records = interp.run(&prog, copy_elim).expect("ast run");
        let lowered = lower_with(&prog, copy_elim).expect("lower");
        let mut vm = Vm::new(&lowered, st);
        let vm_records = vm.run().expect("vm run");
        assert_eq!(ast_records, vm_records);
        for name in interp.var_names() {
            assert_eq!(interp.var(name), vm.var(name), "variable `{name}` differs");
            assert_eq!(interp.var_bytes(name), vm.var_bytes(name));
        }
    }

    #[test]
    fn q6_pipeline_matches_interpreter_exactly() {
        assert_vm_matches_interp(Q6, &lineitem_storage(), &[]);
    }

    #[test]
    fn copy_elim_flags_are_baked_and_match() {
        let flags = [false, true, true, true, true, false];
        assert_vm_matches_interp(Q6, &lineitem_storage(), &flags);
        let lowered = lower_with(&parse(Q6).expect("parse"), &flags).expect("lower");
        assert_eq!(lowered.copy_elim(), &flags);
    }

    #[test]
    fn scalar_expressions_match() {
        let st = Storage::new();
        assert_vm_matches_interp(
            "a = 2 + 3 * 4\nb = a >= 14\nc = b and (a != 15)\nd = -a / 2\ne = a\n",
            &st,
            &[],
        );
    }

    #[test]
    fn self_reference_reads_old_value() {
        let st = Storage::new();
        assert_vm_matches_interp("a = 1\na = a + 1\na = (a + 1) * a\n", &st, &[]);
        let prog = parse("a = 1\na = a + 1\n").expect("parse");
        let lowered = lower(&prog).expect("lower");
        let mut vm = Vm::new(&lowered, &st);
        vm.run().expect("run");
        assert_eq!(vm.var("a").expect("a").as_num().expect("n"), 2.0);
    }

    #[test]
    fn unknown_variable_error_matches_interpreter() {
        let st = Storage::new();
        let prog = parse("a = 1\nb = zzz + 1\n").expect("parse");
        let lowered = lower(&prog).expect("lower");
        let mut vm = Vm::new(&lowered, &st);
        let vm_err = vm.run().unwrap_err();
        let mut interp = Interpreter::new(&st);
        let ast_err = interp.run(&prog, &[]).unwrap_err();
        assert_eq!(vm_err, ast_err);
        assert!(matches!(vm_err, LangError::UnknownVariable { line: 2, .. }));
    }

    #[test]
    fn guard_preserves_error_order_for_ident_operands() {
        // The interpreter hits `zzz` (lhs) before evaluating the bad sort
        // call (rhs); the guard instruction keeps that order in the VM.
        let st = Storage::new();
        let prog = parse("x = zzz + sort(3)\n").expect("parse");
        let lowered = lower(&prog).expect("lower");
        let vm_err = Vm::new(&lowered, &st).run().unwrap_err();
        let ast_err = Interpreter::new(&st).run(&prog, &[]).unwrap_err();
        assert_eq!(vm_err, ast_err);
        assert!(matches!(vm_err, LangError::UnknownVariable { line: 1, .. }));
    }

    #[test]
    fn unknown_function_is_a_lower_time_error() {
        let prog = parse("a = np_dot(1, 2)\n").expect("parse");
        let e = lower(&prog).unwrap_err();
        assert!(matches!(e, LangError::UnknownFunction { line: 1, .. }));
        // The interpreter reports the same error, just at run time.
        let st = Storage::new();
        let ast_err = Interpreter::new(&st).run(&prog, &[]).unwrap_err();
        assert_eq!(e, ast_err);
    }

    #[test]
    fn duplicate_inputs_charge_bytes_in_once() {
        let mut st = Storage::new();
        st.insert("v", Value::from(vec![1.0, 2.0, 3.0]));
        assert_vm_matches_interp("a = scan('v')\nb = a + a\n", &st, &[]);
        let prog = parse("a = scan('v')\nb = a + a\n").expect("parse");
        let lowered = lower(&prog).expect("lower");
        assert_eq!(lowered.metas()[1].input_slots.len(), 1, "inputs dedup");
    }

    #[test]
    fn temps_are_stack_disciplined() {
        let prog = parse("x = (1 + 2) * (3 + 4)\ny = ((1 + 2) * 3) + (4 * 5)\n").expect("parse");
        let lowered = lower(&prog).expect("lower");
        // Two named variables plus a bounded temp region.
        assert_eq!(lowered.var_count(), 2);
        assert!(lowered.reg_count() <= lowered.var_count() + 4);
        let st = Storage::new();
        assert_vm_matches_interp(
            "x = (1 + 2) * (3 + 4)\ny = ((1 + 2) * 3) + (4 * 5)\n",
            &st,
            &[],
        );
    }

    #[test]
    fn string_and_num_constants_are_interned() {
        let prog = parse("a = 1\nb = 1\nc = 'x'\nd = 'x'\n").expect("parse");
        let lowered = lower(&prog).expect("lower");
        assert_eq!(lowered.consts.len(), 2);
    }

    #[test]
    fn lowered_program_reports_shape() {
        let lowered = lower(&parse(Q6).expect("parse")).expect("lower");
        assert_eq!(lowered.len(), 6);
        assert!(!lowered.is_empty());
        assert!(lowered.instr_count() >= 6);
        assert_eq!(lowered.slot_of("t"), Some(0));
        assert!(lowered.slot_of("nope").is_none());
    }
}
