//! A small shared worker pool for the data-parallel kernel engine.
//!
//! One process-wide pool, spawned lazily on first parallel submission and
//! shared by every [`crate::par::ParEngine`] — the reproduction's analog of
//! the CSD firmware's fixed worker threads pinned to the 8× A72 CSE cores.
//! Workers live for the process lifetime and sleep on a condvar between
//! jobs, so a kernel call's cost is one lock + notify, not a thread spawn.
//!
//! The pool intentionally knows nothing about chunks or determinism: it
//! only fans a single `Fn(bool)` job out to the submitter plus N helpers.
//! All result placement happens inside the job closure (the engine's
//! atomic-cursor loop), which is what keeps results independent of which
//! thread ran which chunk.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};

/// Hard cap on pool helpers (the submitting thread is participant #0, so
/// this supports policies up to 16 threads).
pub(crate) const MAX_HELPERS: usize = 15;

type RawJob = *const (dyn Fn(bool) + Sync + 'static);

/// A lifetime-erased pointer to the in-flight job closure. Sound to hand
/// to workers because [`run_parallel`] does not return — not even on a
/// panic — until every helper that picked the job up has left it.
#[derive(Clone, Copy)]
struct Job(RawJob);

// SAFETY: the pointee is `Sync` (required by `run_parallel`'s signature)
// and outlives all uses (see `Job` docs), so sharing the pointer across
// threads is sound.
unsafe impl Send for Job {}

#[derive(Default)]
struct State {
    /// Job sequence number, bumped once per submission so a worker can
    /// tell a fresh job from the one it just finished.
    seq: u64,
    job: Option<Job>,
    /// Helpers wanted for the current job.
    want: usize,
    /// Helpers that picked the current job up.
    started: usize,
    /// Helpers currently inside the current job.
    active: usize,
    /// First helper panic payload; re-raised by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Workers spawned so far.
    workers: usize,
}

struct Pool {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serializes submissions: exactly one job is in flight at a time, so
    /// `seq`/`want`/`started`/`active` always describe that job.
    submit: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

fn worker_loop(pool: &'static Pool) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.seq != last_seq {
                    // A job this worker has not seen yet. Join it if it
                    // still wants helpers; otherwise remember it as seen
                    // and keep sleeping.
                    last_seq = st.seq;
                    if st.started < st.want {
                        st.started += 1;
                        st.active += 1;
                        break st
                            .job
                            .expect("a published job outlives its sequence number");
                    }
                }
                st = pool
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the submitter blocks in `run_parallel` until `active`
        // returns to zero, so the closure behind the raw pointer is alive
        // for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(true) }));
        let mut st = pool.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 && st.started == st.want {
            pool.done_cv.notify_all();
        }
    }
}

/// Runs `job` on the calling thread plus up to `helpers` pool workers.
///
/// The closure receives `true` when invoked on a pool helper ("stolen"
/// work, for the engine's steal counters) and `false` on the calling
/// thread. Blocks until every participant has returned; a panic — the
/// caller's own or any helper's — is re-raised only after the job has
/// fully quiesced, so the closure is never used after its frame dies.
pub(crate) fn run_parallel(helpers: usize, job: &(dyn Fn(bool) + Sync)) {
    if helpers == 0 {
        job(false);
        return;
    }
    let pool = pool();
    let token = pool.submit.lock().unwrap_or_else(PoisonError::into_inner);
    {
        let mut st = pool.state.lock().unwrap_or_else(PoisonError::into_inner);
        let target = helpers.min(MAX_HELPERS);
        while st.workers < target {
            std::thread::Builder::new()
                .name(format!("alang-par-{}", st.workers))
                .spawn(move || worker_loop(pool))
                .expect("pool worker thread spawns");
            st.workers += 1;
        }
        // SAFETY (lifetime erasure): `job`'s non-'static borrow is erased
        // here and reconstructed in `worker_loop`; the wait below keeps
        // the borrow live past every dereference.
        let erased =
            unsafe { std::mem::transmute::<*const (dyn Fn(bool) + Sync), RawJob>(job as *const _) };
        st.seq = st.seq.wrapping_add(1);
        st.job = Some(Job(erased));
        st.want = target.min(st.workers);
        st.started = 0;
        st.active = 0;
        st.panic = None;
        pool.work_cv.notify_all();
    }
    // The submitter participates instead of idling.
    let own = catch_unwind(AssertUnwindSafe(|| job(false)));
    let helper_panic = {
        let mut st = pool.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.started < st.want || st.active > 0 {
            st = pool
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        st.panic.take()
    };
    drop(token);
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if let Some(payload) = helper_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_helpers_runs_inline() {
        let calls = AtomicUsize::new(0);
        run_parallel(0, &|helper| {
            assert!(!helper);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn helpers_participate_and_all_work_completes() {
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        run_parallel(3, &|_helper| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= 1000 {
                break;
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn submissions_can_repeat_and_nest_sequentially() {
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            run_parallel(2, &|_| {
                sum.fetch_add(1, Ordering::Relaxed);
            });
            // Submitter + up to 2 helpers each ran the closure once.
            let n = sum.load(Ordering::Relaxed);
            assert!((1..=3).contains(&n), "round {round}: {n} participants");
        }
    }

    #[test]
    fn submitter_panic_is_reraised_after_quiescence() {
        let caught = std::panic::catch_unwind(|| {
            run_parallel(2, &|helper| {
                if !helper {
                    panic!("submitter boom");
                }
            });
        });
        assert!(caught.is_err());
        // Pool is still usable afterwards.
        let ok = AtomicUsize::new(0);
        run_parallel(2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ok.load(Ordering::Relaxed) >= 1);
    }
}
