//! Tokens and the lexer for ALang source text.
//!
//! ALang is deliberately Python-shaped: one statement per physical line,
//! `#` comments, identifiers/numbers/strings, infix arithmetic and
//! comparison operators, and `and`/`or`/`not` keywords.

use crate::error::{LangError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword operand.
    Ident(String),
    /// A numeric literal.
    Num(f64),
    /// A string literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
}

impl Token {
    /// A short human-readable description for diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Num(n) => format!("number `{n}`"),
            Token::Str(s) => format!("string \"{s}\""),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::Comma => "`,`".into(),
            Token::Assign => "`=`".into(),
            Token::Plus => "`+`".into(),
            Token::Minus => "`-`".into(),
            Token::Star => "`*`".into(),
            Token::Slash => "`/`".into(),
            Token::Lt => "`<`".into(),
            Token::Le => "`<=`".into(),
            Token::Gt => "`>`".into(),
            Token::Ge => "`>=`".into(),
            Token::EqEq => "`==`".into(),
            Token::Ne => "`!=`".into(),
            Token::And => "`and`".into(),
            Token::Or => "`or`".into(),
            Token::Not => "`not`".into(),
        }
    }
}

/// Lexes one source line (without its terminating newline) into tokens.
///
/// `line_no` is 1-based and only used for diagnostics.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on characters outside the language.
pub fn lex_line(source: &str, line_no: usize) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => break, // comment to end of line
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    tokens.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LangError::Lex {
                        line: line_no,
                        message: "bare `!` is not an operator (use `not`)".into(),
                    });
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(LangError::Lex {
                                line: line_no,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && i > start
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| LangError::Lex {
                    line: line_no,
                    message: format!("malformed number `{text}`"),
                })?;
                tokens.push(Token::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                tokens.push(match word.as_str() {
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    _ => Token::Ident(word),
                });
            }
            other => {
                return Err(LangError::Lex {
                    line: line_no,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_assignment_with_call() {
        let t = lex_line("x = sum(filter(a, m))", 1).expect("lex");
        assert_eq!(t[0], Token::Ident("x".into()));
        assert_eq!(t[1], Token::Assign);
        assert_eq!(t[2], Token::Ident("sum".into()));
        assert_eq!(t[3], Token::LParen);
        assert!(t.contains(&Token::Comma));
        assert_eq!(*t.last().expect("last"), Token::RParen);
    }

    #[test]
    fn lexes_numbers_including_scientific() {
        let t = lex_line("y = 1.5e-3 + 42", 1).expect("lex");
        assert!(t.contains(&Token::Num(1.5e-3)));
        assert!(t.contains(&Token::Num(42.0)));
    }

    #[test]
    fn lexes_strings_both_quotes() {
        let t = lex_line(r#"t = scan("lineitem") + scan('part')"#, 1).expect("lex");
        assert!(t.contains(&Token::Str("lineitem".into())));
        assert!(t.contains(&Token::Str("part".into())));
    }

    #[test]
    fn comments_are_stripped() {
        let t = lex_line("x = 1 # the answer", 1).expect("lex");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn comparison_operators() {
        let t = lex_line("m = a <= 3 and b != 2 or not c", 1).expect("lex");
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::And));
        assert!(t.contains(&Token::Or));
        assert!(t.contains(&Token::Not));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let e = lex_line("x = \"oops", 7).unwrap_err();
        assert!(matches!(e, LangError::Lex { line: 7, .. }));
    }

    #[test]
    fn stray_character_is_an_error() {
        assert!(lex_line("x = a $ b", 1).is_err());
    }

    #[test]
    fn bare_bang_is_an_error() {
        assert!(lex_line("x = !a", 1).is_err());
    }
}
