//! Dense matrices and compressed-sparse-row (CSR) matrices.
//!
//! MatrixMul, MixedGEMM, PageRank, and SparseMV operate on these. The CSR
//! type matters to the paper specifically: converting a matrix to CSR is
//! the one operation whose output volume ActivePy consistently
//! *over-estimates* (up to 2.41×), because sparsity is hard to see in small
//! samples (§V). Keeping nnz data-dependent here is what lets the
//! reproduction exhibit the same behaviour.

use crate::error::{LangError, Result};
use crate::par::ParEngine;
use std::fmt;
use std::sync::Arc;

/// A dense row-major matrix with logical (paper-scale) dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Arc<Vec<f64>>,
    rows: usize,
    cols: usize,
    logical_rows: u64,
    logical_cols: u64,
}

impl Matrix {
    /// Builds a matrix whose logical size equals its materialized size.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn new(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        Self::with_logical(data, rows, cols, rows as u64, cols as u64)
    }

    /// Builds a matrix whose materialized `rows × cols` block stands for a
    /// `logical_rows × logical_cols` paper-scale matrix.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or logical dims smaller than the
    /// materialized ones.
    pub fn with_logical(
        data: Vec<f64>,
        rows: usize,
        cols: usize,
        logical_rows: u64,
        logical_cols: u64,
    ) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LangError::runtime(format!(
                "matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        if logical_rows < rows as u64 || logical_cols < cols as u64 {
            return Err(LangError::runtime(
                "logical dimensions must be at least the materialized dimensions",
            ));
        }
        Ok(Matrix {
            data: Arc::new(data),
            rows,
            cols,
            logical_rows,
            logical_cols,
        })
    }

    /// Materialized row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialized column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Paper-scale row count.
    #[must_use]
    pub fn logical_rows(&self) -> u64 {
        self.logical_rows
    }

    /// Paper-scale column count.
    #[must_use]
    pub fn logical_cols(&self) -> u64 {
        self.logical_cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// The backing row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Paper-scale data volume (8 bytes per logical element).
    #[must_use]
    pub fn virtual_bytes(&self) -> u64 {
        self.logical_rows * self.logical_cols * 8
    }

    /// Dense matrix multiply `self × rhs`, computed on the materialized
    /// blocks; logical dimensions compose accordingly.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LangError::runtime(format!(
                "matmul shape mismatch: {}x{} times {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = vec![0.0; self.rows * rhs.cols];
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        Matrix::with_logical(
            out,
            self.rows,
            rhs.cols,
            self.logical_rows,
            rhs.logical_cols,
        )
    }

    /// [`Self::matmul`] executed through the data-parallel engine: output
    /// rows are chunked (each is written by exactly one worker), so the
    /// result is bit-identical to the serial product at any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn matmul_with(&self, rhs: &Matrix, par: &ParEngine) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LangError::runtime(format!(
                "matmul shape mismatch: {}x{} times {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        // Per output row: one madd per (k, j) pair.
        let per_row = self.cols.max(1);
        let Some(blocks) = par.map_chunks(self.rows, per_row, |_, rows| {
            let mut block = vec![0.0; rows.len() * rhs.cols];
            for (bi, i) in rows.enumerate() {
                for k in 0..self.cols {
                    let a = self.data[i * self.cols + k];
                    if a == 0.0 {
                        continue;
                    }
                    for j in 0..rhs.cols {
                        block[bi * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                    }
                }
            }
            block
        }) else {
            return self.matmul(rhs);
        };
        let mut out = Vec::with_capacity(self.rows * rhs.cols);
        for block in blocks {
            out.extend_from_slice(&block);
        }
        Matrix::with_logical(
            out,
            self.rows,
            rhs.cols,
            self.logical_rows,
            rhs.logical_cols,
        )
    }

    /// Fraction of materialized entries that are non-zero.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self.data.iter().filter(|x| **x != 0.0).count();
        nnz as f64 / self.data.len() as f64
    }

    /// Converts to CSR. The logical nnz is scaled from the *measured*
    /// density of the materialized block.
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.data[r * self.cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        let logical_elems = self.logical_rows * self.logical_cols;
        let logical_nnz =
            ((logical_elems as f64 * self.density()).round() as u64).max(values.len() as u64);
        Csr {
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            values: Arc::new(values),
            rows: self.rows,
            cols: self.cols,
            logical_rows: self.logical_rows,
            logical_cols: self.logical_cols,
            logical_nnz,
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix[{}x{} (logical {}x{})]",
            self.rows, self.cols, self.logical_rows, self.logical_cols
        )
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    row_ptr: Arc<Vec<u32>>,
    col_idx: Arc<Vec<u32>>,
    values: Arc<Vec<f64>>,
    rows: usize,
    cols: usize,
    logical_rows: u64,
    logical_cols: u64,
    logical_nnz: u64,
}

impl Csr {
    /// Rebuilds a CSR matrix from its raw arrays (the inverse of reading
    /// them back via [`Csr::row_ptr`] / [`Csr::col_idx`] / [`Csr::values`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the arrays are not a well-formed CSR
    /// structure (`row_ptr` wrong length, non-monotonic, or disagreeing
    /// with `values.len()`; column indices out of range) or the logical
    /// dimensions are smaller than the materialized ones.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
        rows: usize,
        cols: usize,
        logical_rows: u64,
        logical_cols: u64,
        logical_nnz: u64,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 || row_ptr.first() != Some(&0) {
            return Err(LangError::runtime(format!(
                "csr row_ptr length {} does not match {rows} rows",
                row_ptr.len()
            )));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1])
            || row_ptr.last().copied().unwrap_or(0) as usize != values.len()
        {
            return Err(LangError::runtime("csr row_ptr is not a valid prefix sum"));
        }
        if col_idx.len() != values.len() || col_idx.iter().any(|&c| c as usize >= cols.max(1)) {
            return Err(LangError::runtime("csr col_idx out of range"));
        }
        if logical_rows < rows as u64
            || logical_cols < cols as u64
            || logical_nnz < values.len() as u64
        {
            return Err(LangError::runtime(
                "csr logical dimensions must be at least the materialized ones",
            ));
        }
        Ok(Csr {
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            values: Arc::new(values),
            rows,
            cols,
            logical_rows,
            logical_cols,
            logical_nnz,
        })
    }

    /// The row-pointer prefix-sum array (`rows + 1` entries).
    #[must_use]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index of each stored non-zero.
    #[must_use]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value of each stored non-zero.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Paper-scale column count.
    #[must_use]
    pub fn logical_cols(&self) -> u64 {
        self.logical_cols
    }

    /// Materialized row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialized column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Materialized non-zero count.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Paper-scale row count.
    #[must_use]
    pub fn logical_rows(&self) -> u64 {
        self.logical_rows
    }

    /// Paper-scale non-zero count.
    #[must_use]
    pub fn logical_nnz(&self) -> u64 {
        self.logical_nnz
    }

    /// Paper-scale data volume: 12 bytes per stored non-zero (8 value + 4
    /// column index) plus 4 bytes per row pointer.
    #[must_use]
    pub fn virtual_bytes(&self) -> u64 {
        self.logical_nnz * 12 + (self.logical_rows + 1) * 4
    }

    /// Sparse matrix–vector product on the materialized block.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LangError::runtime(format!(
                "spmv shape mismatch: {} cols vs vector of {}",
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        for (r, y_r) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *y_r = acc;
        }
        Ok(y)
    }

    /// [`Self::spmv`] executed through the data-parallel engine: rows are
    /// chunked and each output element is row-local, so the result is
    /// bit-identical to the serial product at any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.len() != cols`.
    pub fn spmv_with(&self, x: &[f64], par: &ParEngine) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LangError::runtime(format!(
                "spmv shape mismatch: {} cols vs vector of {}",
                self.cols,
                x.len()
            )));
        }
        let per_row = (self.nnz() / self.rows.max(1)).max(1);
        let Some(parts) = par.map_chunks(self.rows, per_row, |_, rows| {
            rows.map(|r| {
                let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                acc
            })
            .collect::<Vec<f64>>()
        }) else {
            return self.spmv(x);
        };
        Ok(parts.concat())
    }

    /// One damped PageRank iteration over this adjacency structure
    /// (column-normalized on the fly), returning the next rank vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `ranks.len() != rows` or the matrix is not
    /// square.
    pub fn pagerank_step(&self, ranks: &[f64], damping: f64) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(LangError::runtime(
                "pagerank needs a square adjacency matrix",
            ));
        }
        if ranks.len() != self.rows {
            return Err(LangError::runtime(format!(
                "rank vector length {} does not match {} nodes",
                ranks.len(),
                self.rows
            )));
        }
        // Out-degree per node (treating row r's entries as edges r -> c).
        let mut out_deg = vec![0u32; self.rows];
        for (r, deg) in out_deg.iter_mut().enumerate() {
            *deg = self.row_ptr[r + 1] - self.row_ptr[r];
        }
        let n = self.rows as f64;
        let mut next = vec![(1.0 - damping) / n; self.rows];
        for r in 0..self.rows {
            if out_deg[r] == 0 {
                // Dangling node: spread evenly.
                let share = damping * ranks[r] / n;
                for v in next.iter_mut() {
                    *v += share;
                }
                continue;
            }
            let share = damping * ranks[r] / f64::from(out_deg[r]);
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for k in lo..hi {
                next[self.col_idx[k] as usize] += share;
            }
        }
        Ok(next)
    }

    /// [`Self::pagerank_step`] executed through the data-parallel engine.
    ///
    /// Source rows are chunked; each chunk scatters its contributions into
    /// a private dense partial vector, and partials are combined **in chunk
    /// order** onto the `(1 - damping) / n` base. Chunk boundaries depend
    /// only on the graph shape, so the reassociated sums are identical at
    /// any thread count (though they may differ from the serial scatter
    /// order in the last ulp, deterministically so).
    ///
    /// # Errors
    ///
    /// Same surface as [`Self::pagerank_step`].
    pub fn pagerank_step_with(
        &self,
        ranks: &[f64],
        damping: f64,
        par: &ParEngine,
    ) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(LangError::runtime(
                "pagerank needs a square adjacency matrix",
            ));
        }
        if ranks.len() != self.rows {
            return Err(LangError::runtime(format!(
                "rank vector length {} does not match {} nodes",
                ranks.len(),
                self.rows
            )));
        }
        let n = self.rows as f64;
        let per_row = (self.nnz() / self.rows.max(1)).max(1) + 1;
        let Some(parts) = par.map_chunks(self.rows, per_row, |_, rows| {
            let mut partial = vec![0.0; self.rows];
            for r in rows {
                let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                if lo == hi {
                    // Dangling node: spread evenly.
                    let share = damping * ranks[r] / n;
                    for v in partial.iter_mut() {
                        *v += share;
                    }
                    continue;
                }
                let share = damping * ranks[r] / (hi - lo) as f64;
                for k in lo..hi {
                    partial[self.col_idx[k] as usize] += share;
                }
            }
            partial
        }) else {
            return self.pagerank_step(ranks, damping);
        };
        let mut next = vec![(1.0 - damping) / n; self.rows];
        for partial in parts {
            for (o, v) in next.iter_mut().zip(&partial) {
                *o += v;
            }
        }
        Ok(next)
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "csr[{}x{}, nnz {} (logical nnz {})]",
            self.rows,
            self.cols,
            self.nnz(),
            self.logical_nnz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense() -> Matrix {
        // 2x3 with two zeros.
        Matrix::new(vec![1.0, 0.0, 2.0, 0.0, 3.0, 4.0], 2, 3).expect("matrix")
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Matrix::new(vec![1.0; 5], 2, 3).is_err());
        assert!(Matrix::with_logical(vec![1.0; 6], 2, 3, 1, 3).is_err());
    }

    #[test]
    fn matmul_small_case() {
        let a = Matrix::new(vec![1.0, 2.0, 3.0, 4.0], 2, 2).expect("a");
        let b = Matrix::new(vec![5.0, 6.0, 7.0, 8.0], 2, 2).expect("b");
        let c = a.matmul(&b).expect("c");
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_composes_logical_dims() {
        let a = Matrix::with_logical(vec![1.0; 4], 2, 2, 2000, 2000).expect("a");
        let b = Matrix::with_logical(vec![1.0; 4], 2, 2, 2000, 2000).expect("b");
        let c = a.matmul(&b).expect("c");
        assert_eq!(c.logical_rows(), 2000);
        assert_eq!(c.logical_cols(), 2000);
    }

    #[test]
    fn matmul_shape_mismatch_rejected() {
        let a = Matrix::new(vec![1.0; 6], 2, 3).expect("a");
        let b = Matrix::new(vec![1.0; 4], 2, 2).expect("b");
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn density_measures_nonzeros() {
        assert!((dense().density() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn csr_round_trip_spmv_matches_dense() {
        let m = dense();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 4);
        let y = csr.spmv(&[1.0, 1.0, 1.0]).expect("spmv");
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn csr_logical_nnz_scales_with_density() {
        let m =
            Matrix::with_logical(vec![1.0, 0.0, 2.0, 0.0, 3.0, 4.0], 2, 3, 2000, 3000).expect("m");
        let csr = m.to_csr();
        let expected = (2000u64 * 3000) as f64 * (4.0 / 6.0);
        assert!((csr.logical_nnz() as f64 - expected).abs() < 1.0);
        // CSR volume is smaller than dense volume for sparse data.
        assert!(csr.virtual_bytes() < m.virtual_bytes() * 2);
    }

    #[test]
    fn spmv_shape_mismatch_rejected() {
        assert!(dense().to_csr().spmv(&[1.0]).is_err());
    }

    #[test]
    fn pagerank_conserves_mass() {
        // Ring graph 0->1->2->0.
        let m = Matrix::new(vec![0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0], 3, 3).expect("m");
        let csr = m.to_csr();
        let r0 = vec![1.0 / 3.0; 3];
        let r1 = csr.pagerank_step(&r0, 0.85).expect("step");
        let total: f64 = r1.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // Symmetric ring: stationary distribution stays uniform.
        for v in &r1 {
            assert!((v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        // Node 1 has no out-edges.
        let m = Matrix::new(vec![0.0, 1.0, 0.0, 0.0], 2, 2).expect("m");
        let csr = m.to_csr();
        let r1 = csr.pagerank_step(&[0.5, 0.5], 0.85).expect("step");
        let total: f64 = r1.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_rejects_non_square() {
        let csr = dense().to_csr();
        assert!(csr.pagerank_step(&[0.5, 0.5], 0.85).is_err());
    }

    fn engine(threads: usize) -> ParEngine {
        ParEngine::new(crate::par::ParallelPolicy::new(threads, 256).expect("policy"))
    }

    fn big() -> Matrix {
        let data: Vec<f64> = (0..64 * 64)
            .map(|i| {
                if i % 7 == 0 {
                    0.0
                } else {
                    ((i * 31) % 17) as f64 - 8.0
                }
            })
            .collect();
        Matrix::new(data, 64, 64).expect("matrix")
    }

    #[test]
    fn parallel_matmul_is_bitwise_equal_to_serial() {
        let m = big();
        let serial = m.matmul(&m).expect("serial");
        for threads in [1, 2, 8] {
            let par = m.matmul_with(&m, &engine(threads)).expect("par");
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_spmv_is_bitwise_equal_to_serial() {
        let csr = big().to_csr();
        let x: Vec<f64> = (0..64).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let serial = csr.spmv(&x).expect("serial");
        for threads in [1, 2, 8] {
            let par = csr.spmv_with(&x, &engine(threads)).expect("par");
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_pagerank_is_identical_across_thread_counts() {
        let csr = big().to_csr();
        let ranks = vec![1.0 / 64.0; 64];
        let reference = csr
            .pagerank_step_with(&ranks, 0.85, &engine(1))
            .expect("t1");
        // Bit-identical across thread counts (and mass-conserving).
        for threads in [2, 8] {
            let par = csr
                .pagerank_step_with(&ranks, 0.85, &engine(threads))
                .expect("par");
            assert_eq!(par, reference, "threads={threads}");
        }
        let total: f64 = reference.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
    }

    #[test]
    fn below_threshold_parallel_paths_delegate_to_serial() {
        // Small shapes stay on the untouched serial paths (errors included).
        let m = dense();
        let e = ParEngine::serial();
        assert!(m.matmul_with(&m, &e).is_err(), "2x3 × 2x3 still rejected");
        let y = m.to_csr().spmv_with(&[1.0, 1.0, 1.0], &e).expect("spmv");
        assert_eq!(y, m.to_csr().spmv(&[1.0, 1.0, 1.0]).expect("serial"));
        assert_eq!(e.stats().par_calls, 0);
    }
}
