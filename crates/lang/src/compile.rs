//! The ahead-of-time compiler (the Cython analog).
//!
//! ActivePy "compiles the resulting host application and the composed CSD
//! functions into machine code to avoid the overhead of continuous runtime
//! interpretation" (§I), leveraging Cython-style code generation invoked
//! *after* the program has started and task/data allocation is decided
//! (§III-C0d). A [`CompiledProgram`] bundles the program with its execution
//! tier, the per-line copy-elimination decisions (which require dataset
//! types learned in sampling), an estimated binary size (what gets DMA'd
//! into device memory for CSD functions), and the compilation time itself —
//! the ≈0.1 s / ≈1 % overhead the paper reports.

use crate::ast::Program;
use crate::builtins::Storage;
use crate::bytecode::LoweredProgram;
use crate::copyelim::{self, DatasetTypes};
use crate::cost::{CostParams, ExecTier, LineCost};
use crate::error::Result;
use crate::interp::{Interpreter, LineRecord};
use crate::lower;

/// Estimated machine-code bytes emitted per source line.
const BINARY_BYTES_PER_LINE: u64 = 2048;
/// Fixed binary preamble (runtime stubs, queue-pair glue).
const BINARY_BYTES_BASE: u64 = 16 * 1024;
/// Compilation wall-clock seconds per line (Cython + C compiler).
const COMPILE_SECS_PER_LINE: f64 = 1e-3;
/// Fixed compilation start-up seconds.
const COMPILE_SECS_BASE: f64 = 5e-3;

/// A program lowered to a particular execution tier.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    program: Program,
    tier: ExecTier,
    copy_elim: Vec<bool>,
}

impl CompiledProgram {
    /// Lowers `program` to `tier`.
    ///
    /// For [`ExecTier::CompiledCopyElim`], the copy-elimination pass runs
    /// with the supplied dataset `types` (learned during sampling); lines
    /// whose types cannot be determined keep their copies. Other tiers
    /// never eliminate copies.
    #[must_use]
    pub fn compile(program: Program, tier: ExecTier, types: &DatasetTypes) -> Self {
        let copy_elim = match tier {
            ExecTier::CompiledCopyElim => copyelim::eliminable_lines(&program, types),
            _ => vec![false; program.len()],
        };
        CompiledProgram {
            program,
            tier,
            copy_elim,
        }
    }

    /// The underlying program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The tier this artifact executes at.
    #[must_use]
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Per-line copy-elimination decisions.
    #[must_use]
    pub fn copy_elim(&self) -> &[bool] {
        &self.copy_elim
    }

    /// Estimated size of the emitted machine code, in bytes (charged when
    /// distributing a CSD function into device memory).
    #[must_use]
    pub fn binary_bytes(&self) -> u64 {
        BINARY_BYTES_BASE + self.program.len() as u64 * BINARY_BYTES_PER_LINE
    }

    /// Estimated compilation wall-clock time in seconds for `line_count`
    /// lines (free-standing so partition-sized regions can be costed).
    #[must_use]
    pub fn compile_secs_for(line_count: usize) -> f64 {
        COMPILE_SECS_BASE + line_count as f64 * COMPILE_SECS_PER_LINE
    }

    /// Estimated compilation time of this whole artifact in seconds.
    #[must_use]
    pub fn compile_secs(&self) -> f64 {
        Self::compile_secs_for(self.program.len())
    }

    /// Lowers the artifact to the register bytecode, baking in this tier's
    /// per-line copy-elimination flags. The result runs on
    /// [`crate::bytecode::Vm`] and produces byte-identical [`LineCost`]
    /// records to [`CompiledProgram::run`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::LangError::UnknownFunction`] if any call site
    /// references an unregistered builtin.
    pub fn lower(&self) -> Result<LoweredProgram> {
        lower::lower_with(&self.program, &self.copy_elim)
    }

    /// Executes the artifact against `storage`, returning per-line records
    /// (costs are tier-independent; apply [`LineCost::effective_ops`] with
    /// [`CompiledProgram::tier`] to get engine operations).
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error.
    pub fn run(&self, storage: &Storage) -> Result<Vec<LineRecord>> {
        let mut interp = Interpreter::new(storage);
        interp.run(&self.program, &self.copy_elim)
    }

    /// Total effective operations of a run under this artifact's tier.
    #[must_use]
    pub fn total_effective_ops(&self, records: &[LineRecord], params: &CostParams) -> u64 {
        records
            .iter()
            .map(|r| r.cost.effective_ops(self.tier, params))
            .sum()
    }

    /// Sum of raw line costs of a run.
    #[must_use]
    pub fn total_cost(records: &[LineRecord]) -> LineCost {
        records.iter().map(|r| r.cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::Storage;
    use crate::copyelim::StaticType;
    use crate::parser::parse;
    use crate::value::Value;

    fn storage() -> Storage {
        let mut st = Storage::new();
        st.insert(
            "v",
            Value::Array(crate::value::ArrayVal::with_logical(
                vec![1.0, 2.0, 3.0, 4.0],
                4_000_000,
            )),
        );
        st
    }

    fn types() -> DatasetTypes {
        let mut t = DatasetTypes::new();
        t.insert("v".into(), StaticType::Array);
        t
    }

    const SRC: &str = "a = scan('v')\nb = a * 2\nc = sum(b)\n";

    #[test]
    fn tier_ladder_on_a_real_program() {
        let st = storage();
        let params = CostParams::paper_default();
        let mut totals = Vec::new();
        for tier in [
            ExecTier::Native,
            ExecTier::CompiledCopyElim,
            ExecTier::Compiled,
            ExecTier::Interpreted,
        ] {
            let cp = CompiledProgram::compile(parse(SRC).expect("parse"), tier, &types());
            let rec = cp.run(&st).expect("run");
            totals.push(cp.total_effective_ops(&rec, &params));
        }
        assert!(
            totals[0] <= totals[1] && totals[1] < totals[2] && totals[2] < totals[3],
            "ladder violated: {totals:?}"
        );
        // With full type knowledge, copy elimination reaches native parity.
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn elimination_needs_dataset_types() {
        let cp_with = CompiledProgram::compile(
            parse(SRC).expect("parse"),
            ExecTier::CompiledCopyElim,
            &types(),
        );
        assert_eq!(cp_with.copy_elim(), &[true, true, true]);
        let cp_without = CompiledProgram::compile(
            parse(SRC).expect("parse"),
            ExecTier::CompiledCopyElim,
            &DatasetTypes::new(),
        );
        assert!(cp_without.copy_elim().iter().all(|e| !e));
    }

    #[test]
    fn binary_size_and_compile_time_scale_with_lines() {
        let small = CompiledProgram::compile(
            parse("a = 1\n").expect("parse"),
            ExecTier::Compiled,
            &DatasetTypes::new(),
        );
        let big = CompiledProgram::compile(
            parse("a = 1\nb = 2\nc = 3\nd = 4\n").expect("parse"),
            ExecTier::Compiled,
            &DatasetTypes::new(),
        );
        assert!(big.binary_bytes() > small.binary_bytes());
        assert!(big.compile_secs() > small.compile_secs());
        // Roughly the paper's 0.1 s scale for a ~20-line program.
        assert!(CompiledProgram::compile_secs_for(20) < 0.2);
    }

    #[test]
    fn total_cost_sums_lines() {
        let cp = CompiledProgram::compile(parse(SRC).expect("parse"), ExecTier::Compiled, &types());
        let rec = cp.run(&storage()).expect("run");
        let total = CompiledProgram::total_cost(&rec);
        assert_eq!(total.storage_bytes, 4_000_000 * 8);
        assert!(total.compute_ops > 0);
    }
}
