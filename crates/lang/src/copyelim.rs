//! Static type inference and the redundant-memory-copy elimination pass.
//!
//! ActivePy removes Python's library-boundary buffer copies by placing
//! values in mutable shared memory and, "if ActivePy can determine the
//! target type of memory objects", producing results directly in the
//! consumer's layout (§III-C0c). The enabling analysis is a static type
//! pass: a copy is eliminable only where the value's type is known at
//! code-generation time.
//!
//! `scan(...)` results are dynamically typed (they depend on what is in
//! storage), so programs that consume stored data can only be fully
//! optimized *after* the sampling phase has observed the dataset types —
//! exactly the ActivePy pipeline. [`infer_types`] therefore accepts type
//! seeds for datasets, and [`eliminable_lines`] reports which lines' copies
//! the code generator may remove.

use crate::ast::{BinOp, Expr, Program, UnOp};
use std::collections::BTreeMap;

/// The static type lattice (flat, with `Unknown` as bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StaticType {
    /// Scalar number.
    Num,
    /// Scalar boolean.
    Bool,
    /// String.
    Str,
    /// Numeric array.
    Array,
    /// Boolean mask.
    BoolArray,
    /// Columnar table.
    Table,
    /// Dense matrix.
    Matrix,
    /// CSR matrix.
    Csr,
    /// Forest model.
    Forest,
    /// Wire-format encoded bulk data (not yet decoded).
    Encoded,
    /// Not statically determinable.
    Unknown,
}

impl StaticType {
    /// Whether values of this type are bulk (their copies cost bandwidth).
    #[must_use]
    pub fn is_bulk(self) -> bool {
        matches!(
            self,
            StaticType::Array
                | StaticType::BoolArray
                | StaticType::Table
                | StaticType::Matrix
                | StaticType::Csr
                | StaticType::Forest
                | StaticType::Encoded
        )
    }
}

/// Dataset-name → type seeds obtained from sampling runs.
pub type DatasetTypes = BTreeMap<String, StaticType>;

/// Infers the static type of every line's target.
///
/// `datasets` supplies the types of `scan` results (learned during
/// sampling); without a seed a `scan` is `Unknown` and unknownness
/// propagates.
#[must_use]
pub fn infer_types(program: &Program, datasets: &DatasetTypes) -> Vec<StaticType> {
    let mut env: BTreeMap<&str, StaticType> = BTreeMap::new();
    let mut out = Vec::with_capacity(program.len());
    for line in program.lines() {
        let ty = infer_expr(&line.expr, &env, datasets);
        env.insert(line.target.as_str(), ty);
        out.push(ty);
    }
    out
}

fn infer_expr(
    expr: &Expr,
    env: &BTreeMap<&str, StaticType>,
    datasets: &DatasetTypes,
) -> StaticType {
    match expr {
        Expr::Num(_) => StaticType::Num,
        Expr::Str(_) => StaticType::Str,
        Expr::Ident(name) => env
            .get(name.as_str())
            .copied()
            .unwrap_or(StaticType::Unknown),
        Expr::Unary { op, expr } => {
            let t = infer_expr(expr, env, datasets);
            match op {
                UnOp::Neg => t,
                UnOp::Not => t,
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lt = infer_expr(lhs, env, datasets);
            let rt = infer_expr(rhs, env, datasets);
            if lt == StaticType::Unknown || rt == StaticType::Unknown {
                return StaticType::Unknown;
            }
            let any_array = lt == StaticType::Array || rt == StaticType::Array;
            let any_mask = lt == StaticType::BoolArray || rt == StaticType::BoolArray;
            if op.is_comparison() {
                if any_array {
                    StaticType::BoolArray
                } else {
                    StaticType::Bool
                }
            } else {
                match op {
                    BinOp::And | BinOp::Or => {
                        if any_mask {
                            StaticType::BoolArray
                        } else {
                            StaticType::Bool
                        }
                    }
                    _ => {
                        if any_array {
                            StaticType::Array
                        } else {
                            StaticType::Num
                        }
                    }
                }
            }
        }
        Expr::Call { name, args } => {
            let arg_types: Vec<StaticType> =
                args.iter().map(|a| infer_expr(a, env, datasets)).collect();
            builtin_return_type(name, args, &arg_types, datasets)
        }
    }
}

fn builtin_return_type(
    name: &str,
    args: &[Expr],
    arg_types: &[StaticType],
    datasets: &DatasetTypes,
) -> StaticType {
    match name {
        "scan" | "scan_raw" => match args.first() {
            Some(Expr::Str(ds)) => datasets.get(ds).copied().unwrap_or(StaticType::Unknown),
            _ => StaticType::Unknown,
        },
        "col" | "select" | "sort" | "where" | "spmv" | "pagerank_step" | "kmeans_assign"
        | "forest_score" | "gather" | "decode" => StaticType::Array,
        "exp" | "log" | "sqrt" | "erf" | "abs" => {
            arg_types.first().copied().unwrap_or(StaticType::Unknown)
        }
        "filter" | "group_sum" => StaticType::Table,
        "len" | "sum" | "mean" | "minv" | "maxv" | "count" | "dot" | "frob" => StaticType::Num,
        "matmul" | "gemm_batch" | "kmeans_update" | "gram" => StaticType::Matrix,
        "to_csr" => StaticType::Csr,
        _ => StaticType::Unknown,
    }
}

/// Which lines the code generator may apply copy elimination to: every
/// boundary value on the line (inputs read and the value produced) has a
/// known static type.
#[must_use]
pub fn eliminable_lines(program: &Program, datasets: &DatasetTypes) -> Vec<bool> {
    let types = infer_types(program, datasets);
    let mut env: BTreeMap<&str, StaticType> = BTreeMap::new();
    let mut out = Vec::with_capacity(program.len());
    for (line, ty) in program.lines().iter().zip(&types) {
        let inputs_known = line.inputs().iter().all(|name| {
            env.get(name.as_str())
                .is_some_and(|t| *t != StaticType::Unknown)
        });
        let scan_known = !line.accesses_storage() || scan_types_known(&line.expr, datasets);
        out.push(inputs_known && scan_known && *ty != StaticType::Unknown);
        env.insert(line.target.as_str(), *ty);
    }
    out
}

fn scan_types_known(expr: &Expr, datasets: &DatasetTypes) -> bool {
    match expr {
        Expr::Num(_) | Expr::Str(_) | Expr::Ident(_) => true,
        Expr::Call { name, args } => {
            let self_ok = if name == "scan" || name == "scan_raw" {
                matches!(args.first(), Some(Expr::Str(ds))
                    if datasets.get(ds).is_some_and(|t| *t != StaticType::Unknown))
            } else {
                true
            };
            self_ok && args.iter().all(|a| scan_types_known(a, datasets))
        }
        Expr::Binary { lhs, rhs, .. } => {
            scan_types_known(lhs, datasets) && scan_types_known(rhs, datasets)
        }
        Expr::Unary { expr, .. } => scan_types_known(expr, datasets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const PROG: &str = "\
t = scan('lineitem')
q = col(t, 'qty')
m = q < 24
f = filter(t, m)
s = sum(col(f, 'price'))
";

    fn seeds() -> DatasetTypes {
        let mut d = DatasetTypes::new();
        d.insert("lineitem".into(), StaticType::Table);
        d
    }

    #[test]
    fn inference_with_seeds_resolves_everything() {
        let p = parse(PROG).expect("parse");
        let types = infer_types(&p, &seeds());
        assert_eq!(
            types,
            vec![
                StaticType::Table,
                StaticType::Array,
                StaticType::BoolArray,
                StaticType::Table,
                StaticType::Num,
            ]
        );
    }

    #[test]
    fn inference_without_seeds_propagates_unknown() {
        let p = parse(PROG).expect("parse");
        let types = infer_types(&p, &DatasetTypes::new());
        assert_eq!(types[0], StaticType::Unknown);
        // `col` has a fixed Array return type regardless of its input.
        assert_eq!(types[1], StaticType::Array);
        // But the comparison over it is still known.
        assert_eq!(types[2], StaticType::BoolArray);
    }

    #[test]
    fn eliminable_requires_seeds_for_scan_lines() {
        let p = parse(PROG).expect("parse");
        let without = eliminable_lines(&p, &DatasetTypes::new());
        assert!(!without[0], "scan of unseeded dataset is not eliminable");
        assert!(!without[1], "consumer of unknown-typed t is not eliminable");
        let with = eliminable_lines(&p, &seeds());
        assert_eq!(
            with,
            vec![true; 5],
            "all lines eliminable once types are known"
        );
    }

    #[test]
    fn arithmetic_type_rules() {
        let p = parse("a = 1 + 2\nb = a < 3\nc = b and b\n").expect("parse");
        let types = infer_types(&p, &DatasetTypes::new());
        assert_eq!(
            types,
            vec![StaticType::Num, StaticType::Bool, StaticType::Bool]
        );
    }

    #[test]
    fn array_arithmetic_promotes() {
        let mut seeds = DatasetTypes::new();
        seeds.insert("v".into(), StaticType::Array);
        let p = parse("a = scan('v')\nb = a * 2\nm = b >= 1\n").expect("parse");
        let types = infer_types(&p, &seeds);
        assert_eq!(types[1], StaticType::Array);
        assert_eq!(types[2], StaticType::BoolArray);
    }

    #[test]
    fn unknown_variable_is_unknown_type() {
        let p = parse("a = zzz + 1\n").expect("parse");
        let types = infer_types(&p, &DatasetTypes::new());
        assert_eq!(types[0], StaticType::Unknown);
        assert_eq!(eliminable_lines(&p, &DatasetTypes::new()), vec![false]);
    }

    #[test]
    fn bulk_classification() {
        assert!(StaticType::Table.is_bulk());
        assert!(StaticType::Csr.is_bulk());
        assert!(!StaticType::Num.is_bulk());
        assert!(!StaticType::Str.is_bulk());
    }
}
