//! Error types for the ALang front end and runtime.

use std::fmt;

/// Any error produced while lexing, parsing, analysing, or executing an
/// ALang program.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// The lexer met a character it cannot tokenize.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A variable was read before any line assigned it.
    UnknownVariable {
        /// 1-based source line.
        line: usize,
        /// The variable name.
        name: String,
    },
    /// A call referenced a function that is not in the builtin registry.
    UnknownFunction {
        /// 1-based source line.
        line: usize,
        /// The function name.
        name: String,
    },
    /// A builtin was called with the wrong number of arguments.
    Arity {
        /// The function name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Received argument count.
        got: usize,
    },
    /// An operand had the wrong type for the operation.
    Type {
        /// Explanation (includes the offending types).
        message: String,
    },
    /// A dataset name passed to `scan` is not in storage.
    UnknownDataset {
        /// The dataset name.
        name: String,
    },
    /// Any other runtime failure (shape mismatch, division domain, …).
    Runtime {
        /// Explanation.
        message: String,
    },
}

impl LangError {
    /// Shorthand for a runtime error.
    #[must_use]
    pub fn runtime(message: impl Into<String>) -> Self {
        LangError::Runtime {
            message: message.into(),
        }
    }

    /// Shorthand for a type error.
    #[must_use]
    pub fn type_error(message: impl Into<String>) -> Self {
        LangError::Type {
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            LangError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LangError::UnknownVariable { line, name } => {
                write!(f, "line {line}: unknown variable `{name}`")
            }
            LangError::UnknownFunction { line, name } => {
                write!(f, "line {line}: unknown function `{name}`")
            }
            LangError::Arity {
                name,
                expected,
                got,
            } => {
                write!(f, "`{name}` expects {expected} argument(s), got {got}")
            }
            LangError::Type { message } => write!(f, "type error: {message}"),
            LangError::UnknownDataset { name } => write!(f, "unknown dataset `{name}`"),
            LangError::Runtime { message } => write!(f, "runtime error: {message}"),
        }
    }
}

impl std::error::Error for LangError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LangError::Parse {
            line: 3,
            message: "expected `=`".into(),
        };
        assert!(format!("{e}").contains("line 3"));
        let e = LangError::Arity {
            name: "sum".into(),
            expected: 1,
            got: 2,
        };
        assert!(format!("{e}").contains("sum"));
        let e = LangError::UnknownDataset {
            name: "lineitem".into(),
        };
        assert!(format!("{e}").contains("lineitem"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LangError>();
    }
}
