//! Lane-strided reduction kernels: the SIMD fast path for the hottest
//! chunk bodies.
//!
//! A sequential `fold` over f64s is latency-bound: every add waits on
//! the previous one (a 4-cycle dependency chain on current cores). These
//! kernels break the chain by accumulating into [`LANES`] independent
//! accumulators — element `i` always lands in lane `i % LANES` — which
//! the compiler autovectorizes into wide vector adds and the hardware
//! pipelines. Lane totals are then combined *in lane order*, so the
//! floating-point evaluation tree is fixed by the data shape alone.
//!
//! ## The determinism rule
//!
//! Each kernel here has a strided scalar twin (`*_ref`) that performs
//! the same per-lane accumulation with plain sequential scalar ops.
//! Because IEEE-754 addition over an identical operand sequence is
//! exact, `simd kernel == reference twin` **bit-for-bit** — asserted by
//! tests here and in `benches/kernels.rs` at 1/2/4/8 threads. The fast
//! path changes *how fast* a chunk reduces, never *what* it reduces to.
//!
//! These kernels replace the in-chunk loops of the engaged (chunked)
//! path in [`crate::par::ParEngine`]; the below-threshold serial path is
//! untouched, so small inputs produce exactly the bytes they always did.

/// Number of independent accumulator lanes. Wide enough to cover an
/// AVX-512 register of f64s (and two NEON/SSE2 registers unrolled).
pub const LANES: usize = 8;

/// Lane-strided sum: `Σ xs[i]` with element `i` accumulated in lane
/// `i % LANES`, lanes combined in lane order.
#[must_use]
pub fn sum8(xs: &[f64]) -> f64 {
    sum8_by(xs, |x| x)
}

/// Strided scalar twin of [`sum8`]; bit-identical by construction.
#[must_use]
pub fn sum8_ref(xs: &[f64]) -> f64 {
    sum8_by_ref(xs, |x| x)
}

/// Lane-strided mapped sum: `Σ f(xs[i])`. With an inlineable arithmetic
/// `f` (square, abs, …) the loop autovectorizes the same way [`sum8`]
/// does.
#[must_use]
pub fn sum8_by<F: Fn(f64) -> f64>(xs: &[f64], f: F) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for chunk in &mut chunks {
        for j in 0..LANES {
            acc[j] += f(chunk[j]);
        }
    }
    for (j, &x) in chunks.remainder().iter().enumerate() {
        acc[j] += f(x);
    }
    combine_sum(&acc)
}

/// Strided scalar twin of [`sum8_by`]; bit-identical by construction.
#[must_use]
pub fn sum8_by_ref<F: Fn(f64) -> f64>(xs: &[f64], f: F) -> f64 {
    let mut acc = [0.0f64; LANES];
    for (i, &x) in xs.iter().enumerate() {
        acc[i % LANES] += f(x);
    }
    combine_sum(&acc)
}

/// Lane-strided dot product: `Σ xs[i]·ys[i]` over the common prefix.
#[must_use]
pub fn dot8(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mut acc = [0.0f64; LANES];
    let mut xi = xs.chunks_exact(LANES);
    let mut yi = ys.chunks_exact(LANES);
    for (cx, cy) in (&mut xi).zip(&mut yi) {
        for j in 0..LANES {
            acc[j] += cx[j] * cy[j];
        }
    }
    for (j, (&x, &y)) in xi.remainder().iter().zip(yi.remainder()).enumerate() {
        acc[j] += x * y;
    }
    combine_sum(&acc)
}

/// Strided scalar twin of [`dot8`]; bit-identical by construction.
#[must_use]
pub fn dot8_ref(xs: &[f64], ys: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    for (i, (&x, &y)) in xs.iter().zip(ys).enumerate() {
        acc[i % LANES] += x * y;
    }
    combine_sum(&acc)
}

/// Lane-strided minimum over `init` and every element. Comparisons are
/// plain `<` (no NaN propagation — inputs are workload data, never NaN),
/// which compiles to vector min ops.
#[must_use]
pub fn min8(xs: &[f64], init: f64) -> f64 {
    fold_cmp(xs, init, |cur, x| if x < cur { x } else { cur })
}

/// Strided scalar twin of [`min8`]; bit-identical by construction.
#[must_use]
pub fn min8_ref(xs: &[f64], init: f64) -> f64 {
    fold_cmp_ref(xs, init, |cur, x| if x < cur { x } else { cur })
}

/// Lane-strided maximum over `init` and every element.
#[must_use]
pub fn max8(xs: &[f64], init: f64) -> f64 {
    fold_cmp(xs, init, |cur, x| if x > cur { x } else { cur })
}

/// Strided scalar twin of [`max8`]; bit-identical by construction.
#[must_use]
pub fn max8_ref(xs: &[f64], init: f64) -> f64 {
    fold_cmp_ref(xs, init, |cur, x| if x > cur { x } else { cur })
}

#[inline]
fn fold_cmp<F: Fn(f64, f64) -> f64>(xs: &[f64], init: f64, pick: F) -> f64 {
    let mut acc = [init; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for chunk in &mut chunks {
        for j in 0..LANES {
            acc[j] = pick(acc[j], chunk[j]);
        }
    }
    for (j, &x) in chunks.remainder().iter().enumerate() {
        acc[j] = pick(acc[j], x);
    }
    let mut out = acc[0];
    for &lane in &acc[1..] {
        out = pick(out, lane);
    }
    out
}

#[inline]
fn fold_cmp_ref<F: Fn(f64, f64) -> f64>(xs: &[f64], init: f64, pick: F) -> f64 {
    let mut acc = [init; LANES];
    for (i, &x) in xs.iter().enumerate() {
        acc[i % LANES] = pick(acc[i % LANES], x);
    }
    let mut out = acc[0];
    for &lane in &acc[1..] {
        out = pick(out, lane);
    }
    out
}

/// Combines lane accumulators in lane order — the one place the
/// reduction tree narrows, fixed so every path produces the same bytes.
#[inline]
fn combine_sum(acc: &[f64; LANES]) -> f64 {
    let mut total = acc[0];
    for &lane in &acc[1..] {
        total += lane;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        // Patterned but irregular enough that reassociation shows up:
        // mixed magnitudes make float addition visibly non-associative.
        (0..n)
            .map(|i| {
                let base = ((i * 37) % 1009) as f64 - 504.0;
                base * (1.0 + ((i % 7) as f64) * 1e-7) * if i % 3 == 0 { 1e6 } else { 1e-3 }
            })
            .collect()
    }

    #[test]
    fn simd_matches_reference_bit_for_bit() {
        // Includes every remainder length 0..LANES and the empty slice.
        for n in [0, 1, 5, 7, 8, 9, 63, 64, 65, 4095, 4096, 4097, 20_000] {
            let xs = data(n);
            let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
            assert_eq!(sum8(&xs).to_bits(), sum8_ref(&xs).to_bits(), "sum n={n}");
            assert_eq!(
                sum8_by(&xs, |x| x * x).to_bits(),
                sum8_by_ref(&xs, |x| x * x).to_bits(),
                "sumsq n={n}"
            );
            assert_eq!(
                dot8(&xs, &ys).to_bits(),
                dot8_ref(&xs, &ys).to_bits(),
                "dot n={n}"
            );
            assert_eq!(
                min8(&xs, f64::INFINITY).to_bits(),
                min8_ref(&xs, f64::INFINITY).to_bits(),
                "min n={n}"
            );
            assert_eq!(
                max8(&xs, f64::NEG_INFINITY).to_bits(),
                max8_ref(&xs, f64::NEG_INFINITY).to_bits(),
                "max n={n}"
            );
        }
    }

    #[test]
    fn lane_kernels_agree_with_plain_folds_numerically() {
        let xs = data(10_000);
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.25 - 2.0).collect();
        let serial_sum: f64 = xs.iter().sum();
        let rel = (sum8(&xs) - serial_sum).abs() / serial_sum.abs().max(1.0);
        assert!(rel < 1e-10, "sum relative error {rel}");
        let serial_dot: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let rel = (dot8(&xs, &ys) - serial_dot).abs() / serial_dot.abs().max(1.0);
        assert!(rel < 1e-10, "dot relative error {rel}");
        // Min/max are exact regardless of grouping (no rounding).
        let serial_min = xs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let serial_max = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        assert_eq!(min8(&xs, f64::INFINITY), serial_min);
        assert_eq!(max8(&xs, f64::NEG_INFINITY), serial_max);
    }

    #[test]
    fn min_max_respect_init() {
        assert_eq!(min8(&[], 3.0), 3.0);
        assert_eq!(max8(&[], 3.0), 3.0);
        assert_eq!(min8(&[5.0, 4.0], 3.0), 3.0);
        assert_eq!(max8(&[5.0, 4.0], 3.0), 5.0);
        assert_eq!(sum8(&[]), 0.0);
        assert_eq!(dot8(&[], &[]), 0.0);
    }

    #[test]
    fn lane_assignment_is_index_mod_lanes() {
        // A one-hot probe per index: lane structure means element i only
        // ever meets elements ≡ i (mod LANES) before the final combine.
        // Summing 2^lane-weighted one-hots recovers the lane pattern.
        let n = 27;
        for hot in 0..n {
            let mut xs = vec![0.0; n];
            xs[hot] = 1.0;
            assert_eq!(sum8(&xs), 1.0);
            assert_eq!(sum8(&xs).to_bits(), sum8_ref(&xs).to_bits());
        }
    }
}
