//! Journal parsing and summarization for the `trace` analysis binary.
//!
//! The vendored serde_json stand-in can only *emit* JSON, so this module
//! carries a small recursive-descent JSON parser sufficient for reading
//! back the journals this crate writes (and any well-formed JSON). On
//! top of it, [`parse_journal`] reconstructs the span/instant/metrics
//! records from a JSONL journal and [`summarize`] renders the human
//! report: per-phase time breakdown, top-N spans, and the migration
//! timeline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{Histogram, HISTOGRAM_BUCKETS};
use crate::span::SpanKind;

/// A parsed JSON value. Numbers are `f64` (exact for integers up to
/// 2^53, which covers every id/seq/duration a summary cares about).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse one JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

/// A span record read back from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Emission sequence number.
    pub seq: u64,
    /// Span name.
    pub name: String,
    /// Taxonomy kind (as recorded; unknown kinds keep their raw string).
    pub kind: String,
    /// Wall-clock start (ns since epoch; 0 when masked).
    pub wall_ns: u64,
    /// Wall-clock duration in ns (0 when masked).
    pub wall_dur_ns: u64,
    /// Simulated-clock start, when recorded.
    pub sim_secs: Option<f64>,
    /// Simulated duration, when recorded.
    pub sim_dur_secs: Option<f64>,
    /// Attributes as parsed values, key order preserved.
    pub attrs: Vec<(String, JsonValue)>,
}

/// An instant record read back from a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalInstant {
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Emission sequence number.
    pub seq: u64,
    /// Event name.
    pub name: String,
    /// Taxonomy kind.
    pub kind: String,
    /// Wall-clock timestamp (0 when masked).
    pub wall_ns: u64,
    /// Simulated-clock timestamp, when recorded.
    pub sim_secs: Option<f64>,
    /// Attributes as parsed values, key order preserved.
    pub attrs: Vec<(String, JsonValue)>,
}

/// A parsed JSONL journal.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// All span records, in emission order.
    pub spans: Vec<JournalSpan>,
    /// All instant records, in emission order.
    pub instants: Vec<JournalInstant>,
    /// The metrics footer, when present.
    pub metrics: Option<JsonValue>,
    /// Torn final lines skipped instead of failing the parse (0 or 1: a
    /// crash mid-write can only corrupt the last line of an
    /// append-ordered JSONL file).
    pub torn_lines: u32,
}

fn opt_f64(v: Option<&JsonValue>) -> Option<f64> {
    match v {
        Some(JsonValue::Num(n)) => Some(*n),
        _ => None,
    }
}

fn req_u64(obj: &JsonValue, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("journal line {line_no}: missing integer field '{key}'"))
}

fn req_str(obj: &JsonValue, key: &str, line_no: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("journal line {line_no}: missing string field '{key}'"))
}

fn attrs_of(obj: &JsonValue) -> Vec<(String, JsonValue)> {
    obj.get("attrs")
        .and_then(JsonValue::as_obj)
        .map(|fields| fields.to_vec())
        .unwrap_or_default()
}

/// Parse one journal line into `journal`. Records are constructed in
/// full before being pushed, so a failed line never leaves a partial
/// record behind.
fn parse_journal_line(line: &str, line_no: usize, journal: &mut Journal) -> Result<(), String> {
    let v = parse_json(line).map_err(|e| format!("journal line {line_no}: {e}"))?;
    let t = req_str(&v, "t", line_no)?;
    match t.as_str() {
        "span" => journal.spans.push(JournalSpan {
            id: req_u64(&v, "id", line_no)?,
            parent: req_u64(&v, "parent", line_no)?,
            seq: req_u64(&v, "seq", line_no)?,
            name: req_str(&v, "name", line_no)?,
            kind: req_str(&v, "kind", line_no)?,
            wall_ns: req_u64(&v, "wall_ns", line_no)?,
            wall_dur_ns: req_u64(&v, "wall_dur_ns", line_no)?,
            sim_secs: opt_f64(v.get("sim_secs")),
            sim_dur_secs: opt_f64(v.get("sim_dur_secs")),
            attrs: attrs_of(&v),
        }),
        "instant" => journal.instants.push(JournalInstant {
            parent: req_u64(&v, "parent", line_no)?,
            seq: req_u64(&v, "seq", line_no)?,
            name: req_str(&v, "name", line_no)?,
            kind: req_str(&v, "kind", line_no)?,
            wall_ns: req_u64(&v, "wall_ns", line_no)?,
            sim_secs: opt_f64(v.get("sim_secs")),
            attrs: attrs_of(&v),
        }),
        "metrics" => journal.metrics = Some(v),
        other => {
            return Err(format!(
                "journal line {line_no}: unknown record type '{other}'"
            ))
        }
    }
    Ok(())
}

/// Parse a JSONL journal as written by [`crate::export::jsonl`].
///
/// Journals are append-ordered, so a process killed mid-write can only
/// corrupt the *final* line: a torn or malformed last line is skipped
/// (counted in [`Journal::torn_lines`]) instead of failing the parse —
/// the JSONL analog of the binary WAL's torn-tail rule
/// ([`crate::wal`]). Corruption anywhere *before* the final line cannot
/// come from a crash and remains a hard error.
pub fn parse_journal(text: &str) -> Result<Journal, String> {
    let mut journal = Journal::default();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, line)| (i + 1, line.trim()))
        .filter(|(_, line)| !line.is_empty())
        .collect();
    let last_idx = lines.len().saturating_sub(1);
    for (idx, (line_no, line)) in lines.iter().enumerate() {
        match parse_journal_line(line, *line_no, &mut journal) {
            Ok(()) => {}
            Err(_) if idx == last_idx => journal.torn_lines += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(journal)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn attr_display(v: &JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s.clone(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Bool(b) => format!("{b}"),
        JsonValue::Null => "null".to_string(),
        _ => "…".to_string(),
    }
}

/// Reconstruct a [`Histogram`] from its JSONL metrics-footer encoding
/// (`{"count":..,"sum":..,"buckets":{"idx":n,..}}`; zero buckets are
/// omitted by the writer). Malformed or out-of-range fields degrade to
/// zero rather than failing the whole summary.
fn histogram_from_json(v: &JsonValue) -> Histogram {
    let mut h = Histogram {
        count: v.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
        sum: v.get("sum").and_then(JsonValue::as_u64).unwrap_or(0),
        ..Histogram::default()
    };
    if let Some(buckets) = v.get("buckets").and_then(JsonValue::as_obj) {
        for (idx, n) in buckets {
            if let (Ok(i), Some(n)) = (idx.parse::<usize>(), n.as_u64()) {
                if i < HISTOGRAM_BUCKETS {
                    h.buckets[i] = n;
                }
            }
        }
    }
    h
}

/// Reconstruct a [`crate::metrics::RegistrySnapshot`] from a journal's
/// metrics footer, or `None` when the journal has no footer. Counter and
/// histogram names keep the footer's (sorted) order, so exporting the
/// reconstruction — e.g. through
/// [`crate::export::prometheus::render`] — is byte-deterministic.
#[must_use]
pub fn footer_snapshot(journal: &Journal) -> Option<crate::metrics::RegistrySnapshot> {
    let metrics = journal.metrics.as_ref()?;
    let counters = metrics
        .get("counters")
        .and_then(JsonValue::as_obj)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default();
    let histograms = metrics
        .get("histograms")
        .and_then(JsonValue::as_obj)
        .map(|fields| {
            fields
                .iter()
                .map(|(k, v)| (k.clone(), histogram_from_json(v)))
                .collect()
        })
        .unwrap_or_default();
    Some(crate::metrics::RegistrySnapshot {
        counters,
        histograms,
    })
}

/// Per-phase aggregate pair from two journals, for [`diff_journals`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Phase-span name.
    pub name: String,
    /// Occurrences in journal A.
    pub count_a: u64,
    /// Occurrences in journal B.
    pub count_b: u64,
    /// Summed wall duration in A (ns).
    pub wall_a_ns: u64,
    /// Summed wall duration in B (ns).
    pub wall_b_ns: u64,
    /// Summed simulated duration in A (seconds).
    pub sim_a_secs: f64,
    /// Summed simulated duration in B (seconds).
    pub sim_b_secs: f64,
}

impl PhaseDelta {
    /// Signed wall delta, B − A, in nanoseconds.
    pub fn wall_delta_ns(&self) -> i128 {
        self.wall_b_ns as i128 - self.wall_a_ns as i128
    }

    /// Signed simulated delta, B − A, in seconds.
    pub fn sim_delta_secs(&self) -> f64 {
        self.sim_b_secs - self.sim_a_secs
    }
}

/// Structural comparison of two journals from [`diff_journals`].
///
/// Spans are aligned by `(name, occurrence index)` — the i-th span
/// named `n` in A pairs with the i-th span named `n` in B — which is
/// stable across runs because emission order is part of the tracer's
/// determinism contract. Wall clocks are reported (signed, B − A) but
/// never participate in [`JournalDiff::identical`]: two runs of the
/// same seed agree on everything except wall time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalDiff {
    /// Per-phase aggregates for every phase name in either journal.
    pub phases: Vec<PhaseDelta>,
    /// Aligned span pairs whose simulated durations disagree:
    /// `(name, occurrence, sim_a, sim_b)`.
    pub sim_mismatches: Vec<(String, usize, f64, f64)>,
    /// `name ×count` for span names with more occurrences in A.
    pub only_in_a: Vec<String>,
    /// `name ×count` for span names with more occurrences in B.
    pub only_in_b: Vec<String>,
    /// Metrics-footer counters that differ: `(name, a, b)` with `None`
    /// for absent.
    pub counter_deltas: Vec<(String, Option<u64>, Option<u64>)>,
    /// Total spans in A / B.
    pub span_counts: (usize, usize),
}

impl JournalDiff {
    /// True when the journals agree on structure, the simulated clock,
    /// and counters — everything except wall time.
    pub fn identical(&self) -> bool {
        self.sim_mismatches.is_empty()
            && self.only_in_a.is_empty()
            && self.only_in_b.is_empty()
            && self.counter_deltas.is_empty()
    }
}

fn footer_counters(journal: &Journal) -> BTreeMap<String, u64> {
    journal
        .metrics
        .as_ref()
        .and_then(|m| m.get("counters"))
        .and_then(JsonValue::as_obj)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare two parsed journals span-by-span (see [`JournalDiff`]).
pub fn diff_journals(a: &Journal, b: &Journal) -> JournalDiff {
    let mut by_name: BTreeMap<&str, (Vec<&JournalSpan>, Vec<&JournalSpan>)> = BTreeMap::new();
    for s in &a.spans {
        by_name.entry(s.name.as_str()).or_default().0.push(s);
    }
    for s in &b.spans {
        by_name.entry(s.name.as_str()).or_default().1.push(s);
    }

    let mut diff = JournalDiff {
        span_counts: (a.spans.len(), b.spans.len()),
        ..JournalDiff::default()
    };
    let mut phases: BTreeMap<String, PhaseDelta> = BTreeMap::new();
    for (name, (in_a, in_b)) in &by_name {
        for (occ, (sa, sb)) in in_a.iter().zip(in_b.iter()).enumerate() {
            let da = sa.sim_dur_secs.unwrap_or(0.0);
            let db = sb.sim_dur_secs.unwrap_or(0.0);
            if da != db || sa.kind != sb.kind {
                diff.sim_mismatches.push((name.to_string(), occ, da, db));
            }
        }
        if in_a.len() > in_b.len() {
            diff.only_in_a
                .push(format!("{name} ×{}", in_a.len() - in_b.len()));
        }
        if in_b.len() > in_a.len() {
            diff.only_in_b
                .push(format!("{name} ×{}", in_b.len() - in_a.len()));
        }
        let is_phase = in_a
            .first()
            .or(in_b.first())
            .map(|s| s.kind == SpanKind::Phase.as_str())
            .unwrap_or(false);
        if is_phase {
            phases.insert(
                name.to_string(),
                PhaseDelta {
                    name: name.to_string(),
                    count_a: in_a.len() as u64,
                    count_b: in_b.len() as u64,
                    wall_a_ns: in_a.iter().map(|s| s.wall_dur_ns).sum(),
                    wall_b_ns: in_b.iter().map(|s| s.wall_dur_ns).sum(),
                    sim_a_secs: in_a.iter().filter_map(|s| s.sim_dur_secs).sum(),
                    sim_b_secs: in_b.iter().filter_map(|s| s.sim_dur_secs).sum(),
                },
            );
        }
    }
    diff.phases = phases.into_values().collect();

    let ca = footer_counters(a);
    let cb = footer_counters(b);
    let names: std::collections::BTreeSet<&String> = ca.keys().chain(cb.keys()).collect();
    for name in names {
        let va = ca.get(name).copied();
        let vb = cb.get(name).copied();
        if va != vb {
            diff.counter_deltas.push((name.clone(), va, vb));
        }
    }
    diff
}

/// Render a [`JournalDiff`] as the human report behind `trace diff`:
/// per-phase signed deltas on both clocks, then any structural or
/// simulated-clock divergences.
pub fn render_diff(diff: &JournalDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace diff: {} spans (A) vs {} spans (B)",
        diff.span_counts.0, diff.span_counts.1
    );
    if !diff.phases.is_empty() {
        let _ = writeln!(out, "\nper-phase deltas (B - A):");
        for p in &diff.phases {
            let _ = writeln!(
                out,
                "  {:<24} n={}/{} wall={:+.3}ms sim={:+.9}s",
                p.name,
                p.count_a,
                p.count_b,
                p.wall_delta_ns() as f64 / 1e6,
                p.sim_delta_secs(),
            );
        }
    }
    const CAP: usize = 20;
    if !diff.sim_mismatches.is_empty() {
        let _ = writeln!(out, "\nsim-clock mismatches: {}", diff.sim_mismatches.len());
        for (name, occ, da, db) in diff.sim_mismatches.iter().take(CAP) {
            let _ = writeln!(out, "  {name}#{occ}: sim {da:.9}s -> {db:.9}s");
        }
        if diff.sim_mismatches.len() > CAP {
            let _ = writeln!(out, "  … {} more", diff.sim_mismatches.len() - CAP);
        }
    }
    for (label, list) in [
        ("only in A", &diff.only_in_a),
        ("only in B", &diff.only_in_b),
    ] {
        if !list.is_empty() {
            let _ = writeln!(out, "\n{label}: {}", list.join(", "));
        }
    }
    if !diff.counter_deltas.is_empty() {
        let _ = writeln!(out, "\ncounter deltas:");
        let fmt = |v: Option<u64>| v.map_or("-".to_string(), |n| n.to_string());
        for (name, va, vb) in &diff.counter_deltas {
            let _ = writeln!(out, "  {name:<32} {} -> {}", fmt(*va), fmt(*vb));
        }
    }
    let _ = writeln!(
        out,
        "\nverdict: {}",
        if diff.identical() {
            "identical (structure, sim clock, counters)"
        } else {
            "DIVERGED"
        }
    );
    out
}

/// Render the human summary of a journal: per-phase breakdown on both
/// clocks, top-N spans by simulated (then wall) duration, the migration
/// timeline, and the counter footer.
pub fn summarize(journal: &Journal, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "journal: {} spans, {} instants{}",
        journal.spans.len(),
        journal.instants.len(),
        if journal.metrics.is_some() {
            ", metrics footer"
        } else {
            ""
        },
    );

    // Per-phase breakdown.
    let mut phases: BTreeMap<&str, (u64, u64, f64)> = BTreeMap::new();
    for s in &journal.spans {
        if s.kind == SpanKind::Phase.as_str() {
            let entry = phases.entry(s.name.as_str()).or_insert((0, 0, 0.0));
            entry.0 += 1;
            entry.1 += s.wall_dur_ns;
            entry.2 += s.sim_dur_secs.unwrap_or(0.0);
        }
    }
    if !phases.is_empty() {
        let _ = writeln!(out, "\nper-phase breakdown:");
        let mut rows: Vec<_> = phases.into_iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
        for (name, (count, wall, sim)) in rows {
            let _ = writeln!(
                out,
                "  {name:<24} n={count:<4} wall={:<12} sim={sim:.6}s",
                fmt_ms(wall)
            );
        }
    }

    // Top-N spans by simulated duration, wall as tiebreaker.
    let mut by_dur: Vec<&JournalSpan> = journal.spans.iter().collect();
    by_dur.sort_by(|a, b| {
        let sa = a.sim_dur_secs.unwrap_or(0.0);
        let sb = b.sim_dur_secs.unwrap_or(0.0);
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.wall_dur_ns.cmp(&a.wall_dur_ns))
            .then(a.seq.cmp(&b.seq))
    });
    if !by_dur.is_empty() {
        let _ = writeln!(out, "\ntop {} spans:", top_n.min(by_dur.len()));
        for s in by_dur.iter().take(top_n) {
            let sim = match s.sim_dur_secs {
                Some(d) => format!("{d:.6}s"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  [{:<9}] {:<28} sim={sim:<12} wall={}",
                s.kind,
                s.name,
                fmt_ms(s.wall_dur_ns)
            );
        }
    }

    // Migration timeline.
    let migrations: Vec<&JournalInstant> = journal
        .instants
        .iter()
        .filter(|i| i.kind == SpanKind::Migration.as_str())
        .collect();
    let _ = writeln!(out, "\nmigrations: {}", migrations.len());
    for m in &migrations {
        let at = match m.sim_secs {
            Some(s) => format!("sim {s:.6}s"),
            None => format!("wall {}", fmt_ms(m.wall_ns)),
        };
        let attrs = m
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={}", attr_display(v)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "  at {at}: {} {attrs}", m.name);
    }

    // Counter footer.
    if let Some(metrics) = &journal.metrics {
        if let Some(counters) = metrics.get("counters").and_then(JsonValue::as_obj) {
            // Wire-format decode footer: the kernel.decode.* counters
            // folded into one block of decode arithmetic.
            let named = |name: &str| -> u64 {
                counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_u64())
                    .unwrap_or(0)
            };
            let calls = named("kernel.decode.calls");
            if calls > 0 {
                let bytes_in = named("kernel.decode.bytes_in");
                let bytes_out = named("kernel.decode.bytes_out");
                let _ = writeln!(out, "\ndecode kernels:");
                let _ = writeln!(
                    out,
                    "  calls={calls} encoded={bytes_in}B decoded={bytes_out}B \
                     expansion={:.2}x",
                    if bytes_in > 0 {
                        bytes_out as f64 / bytes_in as f64
                    } else {
                        0.0
                    }
                );
                for codec in ["gzip", "zlib", "none"] {
                    let n = named(&format!("kernel.decode.codec.{codec}"));
                    if n > 0 {
                        let _ = writeln!(out, "  codec.{codec:<26} {n}");
                    }
                }
            }
            if !counters.is_empty() {
                let _ = writeln!(out, "\ncounters:");
                for (k, v) in counters {
                    let _ = writeln!(out, "  {k:<32} {}", attr_display(v));
                }
            }
        }
        if let Some(hists) = metrics.get("histograms").and_then(JsonValue::as_obj) {
            if !hists.is_empty() {
                let _ = writeln!(out, "\nhistograms:");
                for (k, v) in hists {
                    let h = histogram_from_json(v);
                    let _ = write!(
                        out,
                        "  {k:<32} count={} sum={} mean={:.1}",
                        h.count(),
                        h.sum,
                        h.mean()
                    );
                    // Quantiles are bucket upper bounds (≤ a factor of
                    // two above the true value, never below it).
                    if let (Some(p50), Some(p95), Some(p99)) =
                        (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
                    {
                        let _ = write!(out, " p50≤{p50} p95≤{p95} p99≤{p99}");
                    }
                    let _ = writeln!(out);
                }
            }
        }
    }

    // Calibration-audit footer: quantiles of the per-line Eq. 1 time
    // error published by `activepy::audit::CalibrationReport::publish_to`
    // plus the worst-mispredicted-lines table from `audit.line`
    // instants. Absent entirely for unaudited journals.
    let audit_err = journal
        .metrics
        .as_ref()
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("audit.time_err_ppm"))
        .map(histogram_from_json)
        .filter(|h| h.count > 0);
    if let Some(h) = audit_err {
        let _ = writeln!(out, "\ncalibration error (|measured-predicted|, ppm):");
        if let (Some(p50), Some(p95), Some(p99)) =
            (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99))
        {
            let _ = writeln!(
                out,
                "  lines={} mean={:.0}ppm p50≤{p50} p95≤{p95} p99≤{p99}",
                h.count(),
                h.mean()
            );
        }
    }
    let mut audited: Vec<&JournalInstant> = journal
        .instants
        .iter()
        .filter(|i| i.name == "audit.line")
        .collect();
    if !audited.is_empty() {
        let attr_u64 = |i: &JournalInstant, key: &str| -> u64 {
            i.attrs
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0)
        };
        audited.sort_by(|a, b| {
            attr_u64(b, "err_ppm")
                .cmp(&attr_u64(a, "err_ppm"))
                .then(a.seq.cmp(&b.seq))
        });
        let _ = writeln!(out, "\nworst {} mispredicted lines:", audited.len().min(5));
        for i in audited.iter().take(5) {
            let attr = |key: &str| -> String {
                i.attrs
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| attr_display(v))
                    .unwrap_or_else(|| "-".to_string())
            };
            let _ = writeln!(
                out,
                "  {:<16} line {:<3} predicted={}s measured={}s err={}ppm flipped={}",
                attr("workload"),
                attr("line"),
                attr("predicted_secs"),
                attr("measured_secs"),
                attr("err_ppm"),
                attr("flipped"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::jsonl;
    use crate::metrics::MetricsRegistry;
    use crate::span::{SpanKind as SK, Tracer};

    #[test]
    fn parse_json_round_trips_basic_values() {
        let v = parse_json(r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5e2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-250.0));
        let JsonValue::Arr(items) = v.get("b").unwrap() else {
            panic!("expected array")
        };
        assert_eq!(items[0], JsonValue::Bool(true));
        assert_eq!(items[1], JsonValue::Null);
        assert_eq!(items[2], JsonValue::Str("x\n".to_string()));
    }

    #[test]
    fn parse_json_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn parse_json_handles_unicode_and_escapes() {
        let v = parse_json(r#""café ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("café ✓"));
    }

    #[test]
    fn journal_round_trip_and_summary() {
        let (t, sink) = Tracer::to_memory();
        let run = t.begin("phase.execute", SK::Phase, Some(0.0));
        let region = t.begin("exec.region", SK::Device, Some(0.0));
        t.instant(
            "migration.decision",
            SK::Migration,
            Some(0.4),
            vec![("reason".to_string(), "Degraded".into())],
        );
        t.end(region, Some(0.5));
        t.end(run, Some(1.0));
        let reg = MetricsRegistry::default();
        reg.counter_add("recovery.retries", 3);
        reg.observe("exec.chunk_sim_ns", 512);

        let text = jsonl(&sink.events(), Some(&reg.snapshot()), true);
        let journal = parse_journal(&text).expect("journal parses");
        assert_eq!(journal.spans.len(), 2);
        assert_eq!(journal.instants.len(), 1);
        assert!(journal.metrics.is_some());
        assert_eq!(journal.spans[1].name, "phase.execute");
        assert_eq!(journal.spans[0].parent, journal.spans[1].id);
        assert_eq!(journal.instants[0].attrs[0].0, "reason");

        let summary = summarize(&journal, 5);
        assert!(summary.contains("per-phase breakdown"));
        assert!(summary.contains("phase.execute"));
        assert!(summary.contains("migrations: 1"));
        assert!(summary.contains("reason=Degraded"));
        assert!(summary.contains("recovery.retries"));
        assert!(summary.contains("exec.chunk_sim_ns"));
        // 512 lands in bucket [512, 1024): every quantile reports the
        // upper bound of that bucket.
        assert!(summary.contains("p50≤1024 p95≤1024 p99≤1024"), "{summary}");
    }

    #[test]
    fn decode_counters_render_a_dedicated_footer() {
        let (t, sink) = Tracer::to_memory();
        let run = t.begin("phase.run", SK::Phase, Some(0.0));
        t.end(run, Some(1.0));
        let reg = MetricsRegistry::default();
        reg.counter_add("kernel.decode.calls", 4);
        reg.counter_add("kernel.decode.bytes_in", 1_000);
        reg.counter_add("kernel.decode.bytes_out", 20_000);
        reg.counter_add("kernel.decode.codec.gzip", 3);
        reg.counter_add("kernel.decode.codec.none", 1);

        let text = jsonl(&sink.events(), Some(&reg.snapshot()), true);
        let journal = parse_journal(&text).expect("journal parses");
        let summary = summarize(&journal, 5);
        assert!(summary.contains("decode kernels:"), "{summary}");
        assert!(
            summary.contains("calls=4 encoded=1000B decoded=20000B expansion=20.00x"),
            "{summary}"
        );
        assert!(summary.contains("codec.gzip"), "{summary}");
        assert!(summary.contains("codec.none"), "{summary}");
        assert!(!summary.contains("codec.zlib"), "{summary}");

        // A journal with no decode traffic renders no decode block.
        let text = jsonl(
            &sink.events(),
            Some(&MetricsRegistry::default().snapshot()),
            true,
        );
        let plain = parse_journal(&text).expect("journal parses");
        assert!(!summarize(&plain, 5).contains("decode kernels:"));
    }

    fn audited_journal() -> String {
        let (t, sink) = Tracer::to_memory();
        let run = t.begin("phase.execute", SK::Phase, Some(0.0));
        for (line, err) in [(0u64, 120_000u64), (1, 900), (2, 45_000)] {
            t.instant(
                "audit.line",
                SK::Monitor,
                Some(0.0),
                vec![
                    ("workload".to_string(), "TPC-H-6".into()),
                    ("line".to_string(), line.into()),
                    ("predicted_secs".to_string(), 1.5f64.into()),
                    ("measured_secs".to_string(), 1.7f64.into()),
                    ("err_ppm".to_string(), err.into()),
                    ("flipped".to_string(), (err > 100_000).into()),
                ],
            );
        }
        t.end(run, Some(1.0));
        let reg = MetricsRegistry::default();
        reg.counter_add("audit.lines_audited", 3);
        for err in [120_000u64, 900, 45_000] {
            reg.observe("audit.time_err_ppm", err);
        }
        jsonl(&sink.events(), Some(&reg.snapshot()), true)
    }

    #[test]
    fn summary_renders_the_calibration_footer() {
        let journal = parse_journal(&audited_journal()).expect("parses");
        let summary = summarize(&journal, 5);
        assert!(
            summary.contains("calibration error (|measured-predicted|, ppm):"),
            "{summary}"
        );
        assert!(summary.contains("lines=3"), "{summary}");
        assert!(summary.contains("worst 3 mispredicted lines:"), "{summary}");
        // Sorted by err_ppm descending: line 0 (120000) first.
        let l0 = summary.find("line 0").expect("line 0 row");
        let l2 = summary.find("line 2").expect("line 2 row");
        let l1 = summary.find("line 1").expect("line 1 row");
        assert!(l0 < l2 && l2 < l1, "{summary}");
        assert!(summary.contains("flipped=true"), "{summary}");

        // Unaudited journals render no calibration footer.
        let (t, sink) = Tracer::to_memory();
        let a = t.begin("phase.a", SK::Phase, Some(0.0));
        t.end(a, Some(0.5));
        let plain = parse_journal(&jsonl(&sink.events(), None, true)).expect("parses");
        assert!(!summarize(&plain, 5).contains("calibration error"));
    }

    #[test]
    fn footer_snapshot_round_trips_the_registry() {
        let journal = parse_journal(&audited_journal()).expect("parses");
        let snap = footer_snapshot(&journal).expect("footer present");
        assert_eq!(snap.counter("audit.lines_audited"), Some(3));
        let h = snap.histogram("audit.time_err_ppm").expect("histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 120_000 + 900 + 45_000);
        // Footerless journals yield no snapshot.
        let (t, sink) = Tracer::to_memory();
        let a = t.begin("phase.a", SK::Phase, Some(0.0));
        t.end(a, Some(0.5));
        let plain = parse_journal(&jsonl(&sink.events(), None, true)).expect("parses");
        assert!(footer_snapshot(&plain).is_none());
    }

    #[test]
    fn diff_of_identical_journals_is_identical() {
        let text = audited_journal();
        let j = parse_journal(&text).expect("parses");
        let diff = diff_journals(&j, &j);
        assert!(diff.identical(), "{diff:?}");
        let rendered = render_diff(&diff);
        assert!(rendered.contains("identical (structure, sim clock, counters)"));
        assert!(rendered.contains("per-phase deltas"));
    }

    #[test]
    fn diff_flags_sim_and_counter_divergence_but_not_wall() {
        let mk = |sim_end: f64, retries: u64, extra_span: bool, wall_mask: bool| {
            let (t, sink) = Tracer::to_memory();
            let run = t.begin("phase.execute", SK::Phase, Some(0.0));
            if extra_span {
                let s = t.begin("exec.region", SK::Device, Some(0.0));
                t.end(s, Some(0.1));
            }
            t.end(run, Some(sim_end));
            let reg = MetricsRegistry::default();
            reg.counter_add("recovery.retries", retries);
            parse_journal(&jsonl(&sink.events(), Some(&reg.snapshot()), wall_mask)).expect("parses")
        };
        // Wall-clock differences alone (masked vs unmasked) stay identical.
        let a = mk(1.0, 3, false, true);
        assert!(diff_journals(&a, &mk(1.0, 3, false, false)).identical());

        let diff = diff_journals(&a, &mk(2.0, 5, true, true));
        assert!(!diff.identical());
        assert_eq!(diff.sim_mismatches.len(), 1);
        assert_eq!(diff.sim_mismatches[0].0, "phase.execute");
        assert_eq!(diff.only_in_b, vec!["exec.region ×1".to_string()]);
        assert_eq!(
            diff.counter_deltas,
            vec![("recovery.retries".to_string(), Some(3), Some(5))]
        );
        let rendered = render_diff(&diff);
        assert!(rendered.contains("DIVERGED"), "{rendered}");
        assert!(rendered.contains("recovery.retries"), "{rendered}");
    }

    #[test]
    fn torn_final_line_is_skipped_with_a_counter() {
        // A bad *final* line is treated as a crash-torn tail: skipped,
        // counted, never a hard error.
        let j = parse_journal("{\"t\":\"span\"}\n").expect("torn tail tolerated");
        assert_eq!((j.spans.len(), j.torn_lines), (0, 1));
        let j = parse_journal("{\"t\":\"bogus\"}\n").expect("torn tail tolerated");
        assert_eq!(j.torn_lines, 1);
    }

    #[test]
    fn mid_record_truncation_keeps_the_valid_prefix() {
        // Build a real journal, then cut it mid-way through its last
        // line (a crash mid-write).
        let (t, sink) = Tracer::to_memory();
        let a = t.begin("phase.a", SK::Phase, Some(0.0));
        t.end(a, Some(0.5));
        let b = t.begin("phase.b", SK::Phase, Some(0.5));
        t.end(b, Some(1.0));
        let text = jsonl(&sink.events(), None, true);
        let full = parse_journal(&text).expect("full journal parses");
        assert_eq!((full.spans.len(), full.torn_lines), (2, 0));

        let cut = text.trim_end().len() - 10;
        let torn = parse_journal(&text[..cut]).expect("truncated tail tolerated");
        assert_eq!(torn.spans.len(), full.spans.len() - 1);
        assert_eq!(torn.torn_lines, 1);
        assert_eq!(torn.spans[0], full.spans[0]);
    }

    #[test]
    fn corruption_before_the_final_line_stays_a_hard_error() {
        // A bad line with valid lines after it cannot be a torn tail;
        // that is real corruption and must fail loudly.
        let (t, sink) = Tracer::to_memory();
        let a = t.begin("phase.a", SK::Phase, Some(0.0));
        t.end(a, Some(0.5));
        let good_line = jsonl(&sink.events(), None, true);
        let text = format!("{{\"t\":\"bogus\"}}\n{good_line}");
        let err = parse_journal(&text).unwrap_err();
        assert!(err.contains("unknown record type"), "{err}");
        let text = format!("{{broken\n{good_line}");
        let err = parse_journal(&text).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
