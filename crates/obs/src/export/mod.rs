//! Journal exporters: JSONL event journal and Chrome `trace_event`.
//!
//! Both writers hand-roll their JSON with a fixed field order and
//! Rust's shortest-round-trip `f64` formatting, so the emitted bytes are
//! a pure function of the recorded events. With `mask_wall` set, every
//! wall-clock field is zeroed, making same-seed journals byte-identical
//! across runs (the determinism contract tested in
//! `tests/trace_determinism.rs`).
//!
//! The Chrome export renders two process tracks: pid 1 carries spans on
//! the wall clock (microseconds since tracer epoch) and pid 2 carries
//! the same spans on the simulated device clock (simulated seconds
//! scaled to microseconds), so Perfetto shows host cost and modelled
//! cost side by side.

pub mod prometheus;

use std::fmt::Write as _;

use crate::metrics::RegistrySnapshot;
use crate::span::{AttrValue, Attrs, InstantEvent, Span, TraceEvent};

/// Process id of the wall-clock track in Chrome exports.
pub const CHROME_WALL_PID: u64 = 1;
/// Process id of the simulated-clock track in Chrome exports.
pub const CHROME_SIM_PID: u64 = 2;

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic JSON rendering of an `f64`: shortest round-trip via
/// Rust's `Display`; non-finite values become `null` (JSON has no inf).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) => fmt_f64(x),
        None => "null".to_string(),
    }
}

fn fmt_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => format!("{n}"),
        AttrValue::F64(x) => fmt_f64(*x),
        AttrValue::Bool(b) => format!("{b}"),
        AttrValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

fn fmt_attrs(attrs: &Attrs) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), fmt_attr(v));
    }
    out.push('}');
    out
}

fn jsonl_span(s: &Span, mask_wall: bool) -> String {
    let (wall_ns, wall_dur_ns) = if mask_wall {
        (0, 0)
    } else {
        (s.wall_ns, s.wall_dur_ns)
    };
    format!(
        "{{\"t\":\"span\",\"seq\":{},\"id\":{},\"parent\":{},\"name\":\"{}\",\"kind\":\"{}\",\"wall_ns\":{},\"wall_dur_ns\":{},\"sim_secs\":{},\"sim_dur_secs\":{},\"attrs\":{}}}",
        s.seq,
        s.id,
        s.parent,
        escape_json(&s.name),
        s.kind.as_str(),
        wall_ns,
        wall_dur_ns,
        fmt_opt_f64(s.sim_secs),
        fmt_opt_f64(s.sim_dur_secs),
        fmt_attrs(&s.attrs),
    )
}

fn jsonl_instant(i: &InstantEvent, mask_wall: bool) -> String {
    let wall_ns = if mask_wall { 0 } else { i.wall_ns };
    format!(
        "{{\"t\":\"instant\",\"seq\":{},\"parent\":{},\"name\":\"{}\",\"kind\":\"{}\",\"wall_ns\":{},\"sim_secs\":{},\"attrs\":{}}}",
        i.seq,
        i.parent,
        escape_json(&i.name),
        i.kind.as_str(),
        wall_ns,
        fmt_opt_f64(i.sim_secs),
        fmt_attrs(&i.attrs),
    )
}

fn jsonl_metrics(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"t\":\"metrics\",\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":{{",
            escape_json(k),
            h.count,
            h.sum
        );
        let mut first = true;
        for (idx, n) in h.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{idx}\":{n}");
        }
        out.push_str("}}");
    }
    out.push_str("}}");
    out
}

/// Render a JSONL event journal: one record per line, in emission
/// (span-completion) order, with an optional metrics footer line.
/// `mask_wall` zeroes the wall-clock fields for byte-stable output.
pub fn jsonl(events: &[TraceEvent], metrics: Option<&RegistrySnapshot>, mask_wall: bool) -> String {
    let mut out = String::new();
    for ev in events {
        match ev {
            TraceEvent::Span(s) => out.push_str(&jsonl_span(s, mask_wall)),
            TraceEvent::Instant(i) => out.push_str(&jsonl_instant(i, mask_wall)),
        }
        out.push('\n');
    }
    if let Some(snap) = metrics {
        out.push_str(&jsonl_metrics(snap));
        out.push('\n');
    }
    out
}

fn chrome_args(attrs: &Attrs, id: u64, parent: u64) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"span_id\":{id},\"parent\":{parent}");
    for (k, v) in attrs {
        let _ = write!(out, ",\"{}\":{}", escape_json(k), fmt_attr(v));
    }
    out.push('}');
    out
}

/// Microseconds with sub-ns precision preserved, rendered
/// deterministically.
fn wall_us(ns: u64) -> String {
    fmt_f64(ns as f64 / 1000.0)
}

fn sim_us(secs: f64) -> String {
    fmt_f64(secs * 1e6)
}

/// Render a Chrome `trace_event` JSON object (`{"traceEvents":[...]}`)
/// loadable by Perfetto / `chrome://tracing`.
///
/// Every span becomes a `ph:"X"` complete event on the wall track
/// (pid 1); spans with both simulated endpoints also appear on the
/// simulated track (pid 2). Instants become `ph:"i"` events on the
/// tracks for which they have a timestamp.
pub fn chrome_trace(
    events: &[TraceEvent],
    metrics: Option<&RegistrySnapshot>,
    mask_wall: bool,
) -> String {
    let mut items: Vec<String> = vec![
        format!(
            "{{\"ph\":\"M\",\"pid\":{CHROME_WALL_PID},\"tid\":1,\"name\":\"process_name\",\"args\":{{\"name\":\"wall-clock\"}}}}"
        ),
        format!(
            "{{\"ph\":\"M\",\"pid\":{CHROME_SIM_PID},\"tid\":1,\"name\":\"process_name\",\"args\":{{\"name\":\"sim-clock\"}}}}"
        ),
    ];
    for ev in events {
        match ev {
            TraceEvent::Span(s) => {
                let (wall_ns, wall_dur) = if mask_wall {
                    (0, 0)
                } else {
                    (s.wall_ns, s.wall_dur_ns)
                };
                let args = chrome_args(&s.attrs, s.id, s.parent);
                items.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{CHROME_WALL_PID},\"tid\":1,\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{}}}",
                    wall_us(wall_ns),
                    wall_us(wall_dur),
                    escape_json(&s.name),
                    s.kind.as_str(),
                    args,
                ));
                if let (Some(start), Some(dur)) = (s.sim_secs, s.sim_dur_secs) {
                    items.push(format!(
                        "{{\"ph\":\"X\",\"pid\":{CHROME_SIM_PID},\"tid\":1,\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{}}}",
                        sim_us(start),
                        sim_us(dur),
                        escape_json(&s.name),
                        s.kind.as_str(),
                        args,
                    ));
                }
            }
            TraceEvent::Instant(i) => {
                let wall_ns = if mask_wall { 0 } else { i.wall_ns };
                let args = chrome_args(&i.attrs, 0, i.parent);
                items.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{CHROME_WALL_PID},\"tid\":1,\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\"args\":{}}}",
                    wall_us(wall_ns),
                    escape_json(&i.name),
                    i.kind.as_str(),
                    args,
                ));
                if let Some(sim) = i.sim_secs {
                    items.push(format!(
                        "{{\"ph\":\"i\",\"pid\":{CHROME_SIM_PID},\"tid\":1,\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\"args\":{}}}",
                        sim_us(sim),
                        escape_json(&i.name),
                        i.kind.as_str(),
                        args,
                    ));
                }
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str(item);
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    if let Some(snap) = metrics {
        out.push_str(",\"metrics\":");
        // Reuse the JSONL metrics object minus its "t" discriminator by
        // embedding the full record; parsers that only read traceEvents
        // (Perfetto) ignore unknown top-level keys.
        out.push_str(&jsonl_metrics(snap));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::{SpanKind, Tracer};

    fn sample_events() -> (Vec<TraceEvent>, RegistrySnapshot) {
        let (t, sink) = Tracer::to_memory();
        let outer = t.begin("phase.execute", SpanKind::Phase, Some(0.0));
        t.instant(
            "migration.decision",
            SpanKind::Migration,
            Some(0.25),
            vec![
                ("reason".to_string(), "Degraded".into()),
                ("line".to_string(), 3u64.into()),
            ],
        );
        t.end(outer, Some(1.5));
        let reg = MetricsRegistry::default();
        reg.counter_add("plan_cache.hits", 2);
        reg.observe("exec.chunk_sim_ns", 1000);
        (sink.events(), reg.snapshot())
    }

    #[test]
    fn jsonl_masking_zeroes_only_wall_fields() {
        let (events, snap) = sample_events();
        let masked = jsonl(&events, Some(&snap), true);
        assert!(masked.contains("\"wall_ns\":0"));
        assert!(masked.contains("\"sim_secs\":0.25"));
        assert!(masked.contains("\"sim_dur_secs\":1.5"));
        assert!(masked.contains("\"reason\":\"Degraded\""));
        assert!(masked.contains("\"t\":\"metrics\""));
        assert!(masked.contains("\"plan_cache.hits\":2"));
        // Masked output is reproducible regardless of wall clock.
        let again = jsonl(&events, Some(&snap), true);
        assert_eq!(masked, again);
        assert_eq!(masked.lines().count(), 3);
    }

    #[test]
    fn chrome_trace_has_both_tracks_and_valid_shape() {
        let (events, snap) = sample_events();
        let out = chrome_trace(&events, Some(&snap), true);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.trim_end().ends_with('}'));
        assert!(out.contains("\"name\":\"wall-clock\""));
        assert!(out.contains("\"name\":\"sim-clock\""));
        // Span appears on both pids; sim track ts = 0.0s -> 0us, dur 1.5s -> 1500000us.
        assert!(out.contains(&format!(
            "\"pid\":{CHROME_SIM_PID},\"tid\":1,\"ts\":0,\"dur\":1500000"
        )));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"cat\":\"migration\""));
        // Our own parser accepts it (shape check).
        let v = crate::journal::parse_json(&out).expect("chrome export parses");
        let obj = v.as_obj().expect("top-level object");
        assert!(obj.iter().any(|(k, _)| k == "traceEvents"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(1.25), "1.25");
    }
}
