//! Prometheus text-format exposition of a [`RegistrySnapshot`].
//!
//! The render is a pure function of the snapshot: names are sanitized
//! (`.` → `_`, anything outside `[a-zA-Z0-9_:]` → `_`) under an `isp_`
//! prefix, counters come before histograms, each group in the
//! snapshot's lexicographic order, every sample carries `# HELP` and
//! `# TYPE` headers, and the only label (`le`) is emitted in ascending
//! bucket order. Two equal snapshots therefore render byte-identical
//! expositions — the property the committed golden
//! (`tests/golden/fig5_tpch6_metrics.prom`) pins in CI.
//!
//! Histogram buckets follow the registry's log₂ grid. Observations are
//! integers, so bucket `i` (values in `[2^(i-1), 2^i)`) is rendered as
//! the *inclusive* bound `le="2^i - 1"`, which makes the cumulative
//! counts exact rather than conservative. Zero-increment buckets are
//! skipped (the cumulative value at each emitted bound is unaffected);
//! the mandatory `le="+Inf"` bucket, `_sum`, and `_count` always
//! appear.

use std::fmt::Write as _;

use crate::metrics::{Histogram, RegistrySnapshot, HISTOGRAM_BUCKETS};

/// Sanitize a registry metric name into a Prometheus metric name:
/// `isp_` prefix, `.` and any other character outside `[a-zA-Z0-9_:]`
/// replaced by `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("isp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Inclusive `le` bound of log₂ bucket `i` for integer observations:
/// bucket 0 holds only 0, bucket `i` holds `[2^(i-1), 2^i)` so its
/// largest integer member is `2^i - 1`; the top bucket saturates.
fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i == HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let m = sanitize_name(name);
    let _ = writeln!(out, "# HELP {m} log2-bucket histogram {name}.");
    let _ = writeln!(out, "# TYPE {m} histogram");
    let mut cumulative = 0u64;
    for (i, n) in h.buckets.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        cumulative += n;
        let _ = writeln!(out, "{m}_bucket{{le=\"{}\"}} {cumulative}", bucket_le(i));
    }
    let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{m}_sum {}", h.sum);
    let _ = writeln!(out, "{m}_count {}", h.count);
}

/// Render the full snapshot as Prometheus text exposition format.
///
/// Counters first, then histograms, each in the snapshot's sorted
/// order; deterministic byte-for-byte for equal snapshots.
pub fn render(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let m = sanitize_name(name);
        let _ = writeln!(out, "# HELP {m} monotonic counter {name}.");
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, h) in &snap.histograms {
        render_histogram(&mut out, name, h);
    }
    out
}

/// Structural validation of a Prometheus text exposition, sufficient
/// for the CI gate: every non-comment line is `name value` or
/// `name{le="bound"} value`; every sample's base name was declared by
/// a preceding `# TYPE`; histogram cumulative bucket counts are
/// non-decreasing and end with a `+Inf` bucket matching `_count`.
pub fn validate(text: &str) -> Result<(), String> {
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut bucket_state: Option<(String, u64)> = None; // (metric, last cumulative)
    let mut inf_seen: Option<(String, u64)> = None;
    for (no, line) in text.lines().enumerate() {
        let no = no + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {no}: TYPE without name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {no}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {no}: unknown TYPE kind '{kind}'"));
            }
            typed.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {no}: sample without value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {no}: non-numeric value '{value}'"))?;
        let (name, label) = match series.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {no}: unterminated label set"))?;
                (n, Some(l))
            }
            None => (series, None),
        };
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.iter().any(|(n, k)| n == b && k == "histogram"))
            .unwrap_or(name);
        let Some((_, kind)) = typed.iter().find(|(n, _)| n == base) else {
            return Err(format!("line {no}: sample '{name}' has no TYPE header"));
        };
        if kind == "histogram" && name.ends_with("_bucket") {
            let label =
                label.ok_or_else(|| format!("line {no}: histogram bucket without le label"))?;
            let le = label
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| format!("line {no}: malformed le label '{label}'"))?;
            let cumulative = value as u64;
            if let Some((prev_base, prev)) = &bucket_state {
                if prev_base == base && cumulative < *prev {
                    return Err(format!("line {no}: bucket counts decreased for {base}"));
                }
            }
            bucket_state = Some((base.to_string(), cumulative));
            if le == "+Inf" {
                inf_seen = Some((base.to_string(), cumulative));
            }
        }
        if kind == "histogram" && name.ends_with("_count") {
            match &inf_seen {
                Some((b, c)) if b == base => {
                    if *c != value as u64 {
                        return Err(format!(
                            "line {no}: {base}_count {value} != +Inf bucket {c}"
                        ));
                    }
                }
                _ => return Err(format!("line {no}: {base}_count before +Inf bucket")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> RegistrySnapshot {
        let reg = MetricsRegistry::default();
        reg.counter_add("audit.lines_audited", 4);
        reg.counter_add("plan_cache.hits", 2);
        reg.observe("audit.time_err_ppm", 0);
        reg.observe("audit.time_err_ppm", 1500);
        reg.observe("audit.time_err_ppm", 1700);
        reg.observe("exec.chunk_sim_ns", 512);
        reg.snapshot()
    }

    #[test]
    fn sanitization_prefixes_and_replaces_dots() {
        assert_eq!(
            sanitize_name("audit.lines_audited"),
            "isp_audit_lines_audited"
        );
        assert_eq!(sanitize_name("a-b c"), "isp_a_b_c");
    }

    #[test]
    fn render_is_deterministic_and_validates() {
        let snap = sample_snapshot();
        let a = render(&snap);
        let b = render(&snap);
        assert_eq!(a, b);
        validate(&a).expect("exposition validates");
        // Counters precede histograms; both sorted by name.
        let audit = a.find("isp_audit_lines_audited ").expect("counter");
        let cache = a.find("isp_plan_cache_hits ").expect("counter");
        let hist = a
            .find("# TYPE isp_audit_time_err_ppm histogram")
            .expect("hist");
        assert!(audit < cache && cache < hist);
        assert!(a.contains("# HELP isp_plan_cache_hits monotonic counter plan_cache.hits."));
    }

    #[test]
    fn histogram_buckets_are_exact_inclusive_bounds() {
        let snap = sample_snapshot();
        let out = render(&snap);
        // 0 -> bucket 0 (le="0"); 1500/1700 -> bucket 11 ([1024, 2048),
        // le="2047"), cumulative 3.
        assert!(
            out.contains("isp_audit_time_err_ppm_bucket{le=\"0\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("isp_audit_time_err_ppm_bucket{le=\"2047\"} 3"),
            "{out}"
        );
        assert!(
            out.contains("isp_audit_time_err_ppm_bucket{le=\"+Inf\"} 3"),
            "{out}"
        );
        assert!(out.contains("isp_audit_time_err_ppm_sum 3200"), "{out}");
        assert!(out.contains("isp_audit_time_err_ppm_count 3"), "{out}");
    }

    #[test]
    fn validate_rejects_malformed_expositions() {
        assert!(validate("isp_orphan 1\n").is_err());
        assert!(validate("# TYPE isp_x counter\nisp_x notanumber\n").is_err());
        assert!(validate(
            "# TYPE isp_h histogram\nisp_h_bucket{le=\"1\"} 5\nisp_h_bucket{le=\"3\"} 2\n"
        )
        .is_err());
        let missing_inf =
            "# TYPE isp_h histogram\nisp_h_bucket{le=\"1\"} 1\nisp_h_sum 1\nisp_h_count 1\n";
        assert!(validate(missing_inf).is_err());
        assert!(validate("").is_ok());
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&RegistrySnapshot::default()), "");
    }
}
