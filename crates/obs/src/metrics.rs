//! Monotonic counters and fixed-log2-bucket histograms with
//! deterministic snapshot ordering.
//!
//! The registry unifies what used to be four disconnected counter
//! structs (plan cache, fault injector, recovery, kernel engine): each
//! publishes into a shared namespace (`plan_cache.hits`,
//! `fault.flash_read_errors`, …) and [`MetricsRegistry::snapshot`]
//! returns everything sorted by name, so a serialized snapshot is
//! byte-stable across runs.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram over `u64` observations with fixed log2 buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Per-bucket observation counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive-lower / exclusive-upper bounds of bucket `i`.
    /// Bucket 0 is exactly `[0, 1)`; bucket 64's upper bound saturates.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i == 64 { u64::MAX } else { 1u64 << i };
            (lo, hi)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper bucket bound: the
    /// smallest power-of-two boundary below which at least `ceil(q·count)`
    /// observations fall. `None` when the histogram is empty.
    ///
    /// Resolution is the bucket grid (a factor of two), which is exactly
    /// what the log₂ buckets can answer without storing raw samples; the
    /// estimate never *under*-reports a latency quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        // ceil(q·count), clamped to at least the first observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_bounds(i).1);
            }
        }
        None
    }
}

/// Thread-safe registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Add `v` to the named monotonic counter, creating it at 0.
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut counters = self.counters.lock().expect("metrics poisoned");
        match counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(v),
            None => {
                counters.insert(name.to_string(), v);
            }
        }
    }

    /// Record one observation into the named histogram, creating it
    /// empty.
    pub fn observe(&self, name: &str, v: u64) {
        let mut histograms = self.histograms.lock().expect("metrics poisoned");
        histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Snapshot with deterministic (lexicographic) ordering.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        RegistrySnapshot {
            counters,
            histograms,
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs in lexicographic name order.
    pub histograms: Vec<(String, Histogram)>,
}

impl RegistrySnapshot {
    /// Value of a counter, or `None` if never touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// A histogram by name, or `None` if never touched.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_follow_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_the_domain_without_overlap() {
        // Every bucket's lower bound maps back to that bucket, and the
        // value just below it maps to the previous bucket.
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1);
            assert!(hi > lo);
        }
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 5, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1031);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert!((h.mean() - 206.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_walk_the_bucket_grid() {
        let mut h = Histogram::default();
        // 90 small values in bucket 7 ([64, 128)), 9 in bucket 11
        // ([1024, 2048)), 1 in bucket 15 ([16384, 32768)).
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..9 {
            h.observe(1500);
        }
        h.observe(20_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), Some(128));
        assert_eq!(h.quantile(0.90), Some(128));
        assert_eq!(h.quantile(0.95), Some(2048));
        assert_eq!(h.quantile(0.99), Some(2048));
        assert_eq!(h.quantile(1.0), Some(32_768));
        // q = 0 clamps to the first observation.
        assert_eq!(h.quantile(0.0), Some(128));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_handles_extreme_buckets() {
        let mut h = Histogram::default();
        h.observe(0);
        assert_eq!(h.quantile(0.5), Some(1)); // bucket 0 upper bound
        h.observe(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX)); // saturated top bucket
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_out_of_range_q() {
        let mut h = Histogram::default();
        h.observe(1);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::default();
        reg.counter_add("z.last", 2);
        reg.counter_add("a.first", 1);
        reg.counter_add("a.first", 4);
        reg.observe("lat.chunk", 100);
        reg.observe("lat.chunk", 200);
        reg.observe("b.other", 7);

        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 5), ("z.last".to_string(), 2)]
        );
        let names: Vec<&str> = snap.histograms.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["b.other", "lat.chunk"]);
        assert_eq!(snap.counter("a.first"), Some(5));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.histogram("lat.chunk").unwrap().count, 2);
        assert_eq!(snap.histogram("lat.chunk").unwrap().sum, 300);
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let reg = MetricsRegistry::default();
        reg.counter_add("c", u64::MAX);
        reg.counter_add("c", 10);
        assert_eq!(reg.snapshot().counter("c"), Some(u64::MAX));
    }
}
