//! Dual-clock span/event model and the [`Tracer`] recording handle.
//!
//! Every span carries two timestamps: `wall_ns` (host monotonic
//! nanoseconds since the tracer's epoch) and an optional `sim_secs`
//! (simulated device-clock seconds at span start). Durations are stored
//! on the span itself (`wall_dur_ns`, `sim_dur_secs`), so one record per
//! span lands in the sink — at `end()` time — and journal order is span
//! *completion* order, which is deterministic for a deterministic
//! computation.
//!
//! A disabled tracer is `Tracer { inner: None }`: every recording method
//! is a single branch with no allocation, no lock, and no clock read.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{MetricsRegistry, RegistrySnapshot};

/// Category of a span or instant event; selects the row in the span
/// taxonomy table (DESIGN.md §5.14) and the `cat` field of Chrome
/// exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A pipeline phase: sampling, fit, profit, assign, compile, execute.
    Phase,
    /// Simulated-device work: region execution, per-region chunks, host
    /// lines, data staging.
    Device,
    /// A data-parallel kernel invocation inside the interpreter/VM.
    Kernel,
    /// A Monitor IPC observation window.
    Monitor,
    /// A migration decision (always an instant, with a `reason` attr).
    Migration,
    /// An injected device fault surfacing to the runtime.
    Fault,
    /// Recovery machinery: retries and backoff waits.
    Recovery,
}

impl SpanKind {
    /// Stable lower-case name used in journals and Chrome `cat` fields.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Device => "device",
            SpanKind::Kernel => "kernel",
            SpanKind::Monitor => "monitor",
            SpanKind::Migration => "migration",
            SpanKind::Fault => "fault",
            SpanKind::Recovery => "recovery",
        }
    }

    /// Inverse of [`SpanKind::as_str`]; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "phase" => SpanKind::Phase,
            "device" => SpanKind::Device,
            "kernel" => SpanKind::Kernel,
            "monitor" => SpanKind::Monitor,
            "migration" => SpanKind::Migration,
            "fault" => SpanKind::Fault,
            "recovery" => SpanKind::Recovery,
            _ => return None,
        })
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An attribute value attached to a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute (counts, ids, byte sizes).
    U64(u64),
    /// Floating-point attribute (ratios, simulated seconds).
    F64(f64),
    /// Boolean attribute.
    Bool(bool),
    /// String attribute (names, reasons, engine labels).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Attribute list; insertion order is preserved in exports.
pub type Attrs = Vec<(String, AttrValue)>;

/// A completed span: a named interval on both clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Unique id within a trace (1-based; 0 is "no parent").
    pub id: u64,
    /// Id of the enclosing span, or 0 at top level.
    pub parent: u64,
    /// Global record sequence number (completion order).
    pub seq: u64,
    /// Dotted span name, e.g. `phase.sampling` or `exec.region`.
    pub name: String,
    /// Taxonomy kind.
    pub kind: SpanKind,
    /// Host nanoseconds since tracer epoch at span start.
    pub wall_ns: u64,
    /// Host duration in nanoseconds.
    pub wall_dur_ns: u64,
    /// Simulated clock (seconds) at span start, when the span tracks
    /// simulated work.
    pub sim_secs: Option<f64>,
    /// Simulated duration in seconds, when both endpoints were on the
    /// simulated clock.
    pub sim_dur_secs: Option<f64>,
    /// Attributes, in insertion order.
    pub attrs: Attrs,
}

/// A point event (no duration), e.g. a migration decision or an injected
/// fault.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Id of the enclosing span, or 0 at top level.
    pub parent: u64,
    /// Global record sequence number.
    pub seq: u64,
    /// Dotted event name, e.g. `migration.decision`.
    pub name: String,
    /// Taxonomy kind.
    pub kind: SpanKind,
    /// Host nanoseconds since tracer epoch.
    pub wall_ns: u64,
    /// Simulated clock (seconds), when meaningful.
    pub sim_secs: Option<f64>,
    /// Attributes, in insertion order.
    pub attrs: Attrs,
}

/// One record delivered to a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A completed span.
    Span(Span),
    /// A point event.
    Instant(InstantEvent),
}

impl TraceEvent {
    /// The record's global sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            TraceEvent::Span(s) => s.seq,
            TraceEvent::Instant(i) => i.seq,
        }
    }
}

/// Destination for trace records. Implementations must tolerate records
/// arriving from the thread that owns the traced computation; the tracer
/// itself serializes record emission (span completion order).
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Deliver one record.
    fn record(&self, event: TraceEvent);
}

/// A sink that buffers every record in memory, for tests and for
/// end-of-run export.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// New empty sink behind an `Arc`, ready to hand to [`Tracer::new`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of all records so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// True when no records have been delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("sink poisoned").push(event);
    }
}

/// Open-span state carried between [`Tracer::begin`] and [`Tracer::end`].
///
/// A handle from a disabled tracer is inert. Dropping a live handle
/// without `end()` loses the span (acceptable on error-propagation
/// paths) but never corrupts sibling spans: parent tracking removes the
/// abandoned id lazily.
#[derive(Debug)]
#[must_use = "a span handle must be passed back to Tracer::end to record the span"]
pub struct SpanHandle {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    name: String,
    kind: SpanKind,
    wall_ns: u64,
    sim_secs: Option<f64>,
    attrs: Attrs,
}

impl SpanHandle {
    /// Handle that records nothing; what a disabled tracer returns.
    pub fn inert() -> Self {
        SpanHandle { state: None }
    }
}

#[derive(Debug)]
struct TracerInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    next_id: AtomicU64,
    seq: AtomicU64,
    /// Stack of currently-open span ids on the recording thread;
    /// determines the `parent` of new spans/instants.
    stack: Mutex<Vec<u64>>,
    metrics: MetricsRegistry,
}

/// The recording handle threaded through the pipeline.
///
/// Cloning is cheap (an `Arc` clone); all clones share one sink, one id
/// space, and one metrics registry. `Tracer::default()` is disabled.
///
/// Equality is identity: two tracers are equal iff both are disabled or
/// both share the same inner state. This lets option structs that derive
/// `PartialEq` carry a tracer without breaking their semantics.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl PartialEq for Tracer {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Tracer {
    /// A tracer that records nothing. All methods are near-free.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A live tracer recording into `sink`. The wall-clock epoch is the
    /// moment of this call.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                seq: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    /// Convenience: a live tracer plus the [`MemorySink`] it records to.
    pub fn to_memory() -> (Self, Arc<MemorySink>) {
        let sink = MemorySink::shared();
        (Self::new(sink.clone() as Arc<dyn TraceSink>), sink)
    }

    /// True when records are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. `sim_secs` is the simulated clock at start, when the
    /// span tracks simulated work.
    pub fn begin(&self, name: &str, kind: SpanKind, sim_secs: Option<f64>) -> SpanHandle {
        self.begin_with(name, kind, sim_secs, Vec::new())
    }

    /// Open a span with initial attributes.
    pub fn begin_with(
        &self,
        name: &str,
        kind: SpanKind,
        sim_secs: Option<f64>,
        attrs: Attrs,
    ) -> SpanHandle {
        let Some(inner) = &self.inner else {
            return SpanHandle::inert();
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
        let parent = {
            let mut stack = inner.stack.lock().expect("tracer stack poisoned");
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        };
        SpanHandle {
            state: Some(OpenSpan {
                id,
                parent,
                name: name.to_string(),
                kind,
                wall_ns,
                sim_secs,
                attrs,
            }),
        }
    }

    /// Close a span and deliver its record. `sim_secs` is the simulated
    /// clock at end; the simulated duration is recorded only when both
    /// endpoints were supplied.
    pub fn end(&self, handle: SpanHandle, sim_secs: Option<f64>) {
        self.end_with(handle, sim_secs, Vec::new());
    }

    /// Close a span, appending attributes discovered during its body.
    pub fn end_with(&self, handle: SpanHandle, sim_secs: Option<f64>, extra_attrs: Attrs) {
        let (Some(inner), Some(mut open)) = (&self.inner, handle.state) else {
            return;
        };
        let wall_now = inner.epoch.elapsed().as_nanos() as u64;
        let wall_dur_ns = wall_now.saturating_sub(open.wall_ns);
        let sim_dur_secs = match (open.sim_secs, sim_secs) {
            (Some(start), Some(end)) => Some((end - start).max(0.0)),
            _ => None,
        };
        {
            let mut stack = inner.stack.lock().expect("tracer stack poisoned");
            if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                stack.truncate(pos);
            }
        }
        open.attrs.extend(extra_attrs);
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        inner.sink.record(TraceEvent::Span(Span {
            id: open.id,
            parent: open.parent,
            seq,
            name: open.name,
            kind: open.kind,
            wall_ns: open.wall_ns,
            wall_dur_ns,
            sim_secs: open.sim_secs,
            sim_dur_secs,
            attrs: open.attrs,
        }));
    }

    /// Record a point event under the currently-open span.
    pub fn instant(&self, name: &str, kind: SpanKind, sim_secs: Option<f64>, attrs: Attrs) {
        let Some(inner) = &self.inner else { return };
        let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
        let parent = inner
            .stack
            .lock()
            .expect("tracer stack poisoned")
            .last()
            .copied()
            .unwrap_or(0);
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        inner.sink.record(TraceEvent::Instant(InstantEvent {
            parent,
            seq,
            name: name.to_string(),
            kind,
            wall_ns,
            sim_secs,
            attrs,
        }));
    }

    /// Add `v` to the named monotonic counter (no-op when disabled).
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter_add(name, v);
        }
    }

    /// Record one observation into the named log2-bucket histogram
    /// (no-op when disabled).
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, v);
        }
    }

    /// Deterministically-ordered snapshot of the metrics registry;
    /// `None` when disabled.
    pub fn metrics_snapshot(&self) -> Option<RegistrySnapshot> {
        self.inner.as_ref().map(|inner| inner.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let h = t.begin("x", SpanKind::Phase, None);
        t.end(h, None);
        t.instant("y", SpanKind::Fault, None, Vec::new());
        t.counter_add("c", 1);
        t.observe("h", 1);
        assert!(t.metrics_snapshot().is_none());
        assert_eq!(t, Tracer::default());
    }

    #[test]
    fn spans_nest_and_record_in_completion_order() {
        let (t, sink) = Tracer::to_memory();
        let outer = t.begin("outer", SpanKind::Phase, Some(0.0));
        let inner = t.begin("inner", SpanKind::Device, Some(0.5));
        t.instant(
            "tick",
            SpanKind::Fault,
            Some(0.75),
            vec![("n".to_string(), 3u64.into())],
        );
        t.end(inner, Some(1.0));
        t.end(outer, Some(2.0));

        let events = sink.events();
        assert_eq!(events.len(), 3);
        // Completion order: instant, inner, outer.
        let TraceEvent::Instant(tick) = &events[0] else {
            panic!("expected instant first")
        };
        let TraceEvent::Span(inner_span) = &events[1] else {
            panic!("expected inner span second")
        };
        let TraceEvent::Span(outer_span) = &events[2] else {
            panic!("expected outer span last")
        };
        assert_eq!(outer_span.parent, 0);
        assert_eq!(inner_span.parent, outer_span.id);
        assert_eq!(tick.parent, inner_span.id);
        assert_eq!(inner_span.sim_dur_secs, Some(0.5));
        assert_eq!(outer_span.sim_dur_secs, Some(2.0));
        assert!(inner_span.wall_ns >= outer_span.wall_ns);
        // Sequence numbers are 1-based and strictly increasing.
        assert_eq!(
            events.iter().map(TraceEvent::seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn abandoned_span_does_not_corrupt_siblings() {
        let (t, sink) = Tracer::to_memory();
        let outer = t.begin("outer", SpanKind::Phase, None);
        {
            // Opened but never ended (e.g. an error path unwound past it).
            let _lost = t.begin("lost", SpanKind::Device, None);
        }
        let next = t.begin("next", SpanKind::Device, None);
        t.end(next, None);
        t.end(outer, None);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // "next" parents to "lost" (still open at its begin) — but ending
        // "outer" after truncation still yields a root-level outer span.
        let TraceEvent::Span(outer_span) = &events[1] else {
            panic!("expected outer span last")
        };
        assert_eq!(outer_span.name, "outer");
        assert_eq!(outer_span.parent, 0);
    }

    #[test]
    fn tracer_equality_is_identity() {
        let (a, _) = Tracer::to_memory();
        let (b, _) = Tracer::to_memory();
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_ne!(a, Tracer::disabled());
    }

    #[test]
    fn kind_round_trips() {
        for k in [
            SpanKind::Phase,
            SpanKind::Device,
            SpanKind::Kernel,
            SpanKind::Monitor,
            SpanKind::Migration,
            SpanKind::Fault,
            SpanKind::Recovery,
        ] {
            assert_eq!(SpanKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }
}
