//! Crash-consistent write-ahead execution journal.
//!
//! The JSONL journal ([`crate::journal`]) is telemetry: human-readable,
//! wall-clock-stamped, and replayed only by analysis tools. This module
//! is the *recovery* log: a compact binary append-only file of
//! checksummed, length-prefixed records written at the execution
//! boundaries the runtime already observes (plan commit, completed host
//! lines, completed region chunks, migration and reclaim decisions, run
//! end). A killed process leaves a prefix of the record stream — possibly
//! with a torn final record — and the reader's contract is the classic
//! WAL torn-tail rule: **on open, truncate at the first record whose
//! length or checksum fails; never error.**
//!
//! ## Framing
//!
//! ```text
//! [ magic "ISPWAL01" : 8 bytes ]            (file header)
//! [ u32 len (LE) ][ u64 fnv1a(payload) (LE) ][ payload : len bytes ]*
//! ```
//!
//! Every record is flushed as one `write` after its frame is fully
//! assembled, so a crash between appends leaves a clean prefix and a
//! crash mid-append leaves a detectably torn tail (short payload or
//! checksum mismatch). The checksum is FNV-1a over the payload bytes —
//! the same hash the runtime uses for value fingerprints — which is
//! collision-weak cryptographically but exactly strong enough to detect
//! torn writes and bit rot in a single-writer log.
//!
//! ## Record payloads
//!
//! Records carry only primitives (lane ids, line/chunk indices, f64
//! bit-patterns, counter values) so this crate stays free of runtime
//! types; the runtime maps its own state into a [`StateSnap`] at each
//! boundary. Floats travel as `to_bits()` so records are `Eq` and replay
//! verification is exact.
//!
//! ## Kill hook
//!
//! For crash testing from the outside (CI), `ISP_WAL_KILL_AFTER=N` makes
//! the writer abort the whole process with exit code
//! [`KILL_EXIT_CODE`] after appending N records — after first writing a
//! deliberately torn frame, so the reader's truncation rule is exercised
//! by every externally killed run.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File header identifying a WAL and its format version.
pub const WAL_MAGIC: [u8; 8] = *b"ISPWAL01";

/// Exit code used by the `ISP_WAL_KILL_AFTER` crash hook.
pub const KILL_EXIT_CODE: i32 = 86;

/// Environment variable: abort the process (exit [`KILL_EXIT_CODE`])
/// after this many records have been appended, leaving a torn tail.
pub const KILL_ENV: &str = "ISP_WAL_KILL_AFTER";

/// Upper bound on a sane record payload; anything larger is treated as a
/// torn length prefix. Real records are well under 200 bytes.
const MAX_RECORD_LEN: u32 = 1 << 16;

/// FNV-1a over `bytes` — the workspace's standard fingerprint hash.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic snapshot of the runtime state that must agree between
/// the original run and its replay at every journaled boundary: the sim
/// clock, the recovery layer's accounting, the fault injector's stream
/// position, and the region monitor (when one is live).
///
/// Floats are stored as IEEE-754 bit patterns so the snapshot is `Eq`
/// and replay verification is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateSnap {
    /// Sim clock, seconds, as `f64::to_bits`.
    pub clock_bits: u64,
    /// [`RecoveryStats::transient_faults`] — transient faults absorbed.
    ///
    /// [`RecoveryStats::transient_faults`]: StateSnap
    pub transient_faults: u64,
    /// Retry attempts issued so far.
    pub retries: u64,
    /// Operations that succeeded after at least one retry.
    pub recovered_ops: u64,
    /// Hard faults observed (crashes + retry exhaustions).
    pub hard_faults: u64,
    /// Fault-triggered migrations so far.
    pub fault_migrations: u64,
    /// Total backoff seconds charged, as `f64::to_bits`.
    pub backoff_bits: u64,
    /// Injected flash read errors.
    pub flash_read_errors: u64,
    /// Injected NVMe command errors.
    pub nvme_command_errors: u64,
    /// Injected DMA transfer errors.
    pub dma_transfer_errors: u64,
    /// Hard CSE crashes observed (0 or 1).
    pub cse_crashes: u64,
    /// Whether the hard crash has latched.
    pub crashed: bool,
    /// The fault injector's raw PRNG state (stream position).
    pub rng_state: u64,
    /// Monitor state at the boundary, when a region monitor is live:
    /// `(last_raw_bits, decreases)` — the decrease-streak evidence that
    /// the §III-D triggers accumulate. `None` outside regions.
    pub monitor: Option<(u64, u32)>,
}

/// One WAL record. Lanes identify the journal stream a record belongs
/// to: lane 0 is the only lane of an unsharded run; a sharded fleet uses
/// one lane per shard plus one for the host-side tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// Execution of one lane began. Carries enough shape to detect a
    /// resume against the wrong program or backend.
    RunStart {
        /// Journal lane.
        lane: u32,
        /// Number of program lines.
        program_len: u32,
        /// Backend discriminant (0 = VM, 1 = AST walker).
        backend: u8,
    },
    /// The plan this journal belongs to was committed. `shard_fp` is the
    /// `ShardMap` fingerprint for fleet runs, 0 for unsharded runs.
    PlanCommit {
        /// Journal lane.
        lane: u32,
        /// Fingerprint of the offload plan.
        plan_fp: u64,
        /// Fingerprint of the shard map (0 when unsharded).
        shard_fp: u64,
    },
    /// A host-placed line completed.
    HostLine {
        /// Journal lane.
        lane: u32,
        /// Line index.
        line: u32,
        /// State at the boundary.
        snap: StateSnap,
    },
    /// One chunk of a CSD region completed (the `REGION_CHUNKS` grid).
    Chunk {
        /// Journal lane.
        lane: u32,
        /// First line of the region.
        region_start: u32,
        /// One past the last line of the region.
        region_end: u32,
        /// Chunk index within the region.
        chunk: u32,
        /// State at the boundary.
        snap: StateSnap,
    },
    /// A migration decision was taken (device→host).
    Migration {
        /// Journal lane.
        lane: u32,
        /// Line after which the migration fired.
        line: u32,
        /// Chunk index at the decision (0 for line-boundary decisions).
        chunk: u32,
        /// Migration reason discriminant (runtime-defined mapping).
        reason: u8,
        /// Checkpoint state bytes drained device→host.
        state_bytes: u64,
        /// State at the decision.
        snap: StateSnap,
    },
    /// A reclaim decision was taken (host→device).
    Reclaim {
        /// Journal lane.
        lane: u32,
        /// Line at which the reclaim fired.
        line: u32,
        /// Whether the decision fired inside a region (chunk boundary)
        /// rather than at a line boundary.
        in_region: bool,
        /// State at the decision.
        snap: StateSnap,
    },
    /// Execution of one lane finished.
    RunEnd {
        /// Journal lane.
        lane: u32,
        /// The run's `values_fingerprint`.
        fingerprint: u64,
        /// Total sim seconds, as `f64::to_bits`.
        total_secs_bits: u64,
    },
}

impl WalRecord {
    /// The journal lane this record belongs to.
    #[must_use]
    pub fn lane(&self) -> u32 {
        match self {
            WalRecord::RunStart { lane, .. }
            | WalRecord::PlanCommit { lane, .. }
            | WalRecord::HostLine { lane, .. }
            | WalRecord::Chunk { lane, .. }
            | WalRecord::Migration { lane, .. }
            | WalRecord::Reclaim { lane, .. }
            | WalRecord::RunEnd { lane, .. } => *lane,
        }
    }

    /// The same record stamped onto `lane`. Emission sites in the
    /// runtime build records with lane 0 and the journal handle stamps
    /// its own lane, so sharded fleets reuse the unsharded emission code
    /// unchanged.
    #[must_use]
    pub fn with_lane(mut self, new_lane: u32) -> WalRecord {
        match &mut self {
            WalRecord::RunStart { lane, .. }
            | WalRecord::PlanCommit { lane, .. }
            | WalRecord::HostLine { lane, .. }
            | WalRecord::Chunk { lane, .. }
            | WalRecord::Migration { lane, .. }
            | WalRecord::Reclaim { lane, .. }
            | WalRecord::RunEnd { lane, .. } => *lane = new_lane,
        }
        self
    }

    /// Short type name for diagnostics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::RunStart { .. } => "run_start",
            WalRecord::PlanCommit { .. } => "plan_commit",
            WalRecord::HostLine { .. } => "host_line",
            WalRecord::Chunk { .. } => "chunk",
            WalRecord::Migration { .. } => "migration",
            WalRecord::Reclaim { .. } => "reclaim",
            WalRecord::RunEnd { .. } => "run_end",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            WalRecord::RunStart { .. } => 1,
            WalRecord::PlanCommit { .. } => 2,
            WalRecord::HostLine { .. } => 3,
            WalRecord::Chunk { .. } => 4,
            WalRecord::Migration { .. } => 5,
            WalRecord::Reclaim { .. } => 6,
            WalRecord::RunEnd { .. } => 7,
        }
    }

    /// Encodes the record payload (no framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.u8(self.tag());
        w.u32(self.lane());
        match self {
            WalRecord::RunStart {
                program_len,
                backend,
                ..
            } => {
                w.u32(*program_len);
                w.u8(*backend);
            }
            WalRecord::PlanCommit {
                plan_fp, shard_fp, ..
            } => {
                w.u64(*plan_fp);
                w.u64(*shard_fp);
            }
            WalRecord::HostLine { line, snap, .. } => {
                w.u32(*line);
                snap.encode(&mut w);
            }
            WalRecord::Chunk {
                region_start,
                region_end,
                chunk,
                snap,
                ..
            } => {
                w.u32(*region_start);
                w.u32(*region_end);
                w.u32(*chunk);
                snap.encode(&mut w);
            }
            WalRecord::Migration {
                line,
                chunk,
                reason,
                state_bytes,
                snap,
                ..
            } => {
                w.u32(*line);
                w.u32(*chunk);
                w.u8(*reason);
                w.u64(*state_bytes);
                snap.encode(&mut w);
            }
            WalRecord::Reclaim {
                line,
                in_region,
                snap,
                ..
            } => {
                w.u32(*line);
                w.bool(*in_region);
                snap.encode(&mut w);
            }
            WalRecord::RunEnd {
                fingerprint,
                total_secs_bits,
                ..
            } => {
                w.u64(*fingerprint);
                w.u64(*total_secs_bits);
            }
        }
        w.out
    }

    /// Decodes one record payload.
    ///
    /// # Errors
    ///
    /// Returns a description when the payload is short, has an unknown
    /// tag, or carries trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, String> {
        let mut r = ByteReader { bytes, pos: 0 };
        let tag = r.u8()?;
        let lane = r.u32()?;
        let rec = match tag {
            1 => WalRecord::RunStart {
                lane,
                program_len: r.u32()?,
                backend: r.u8()?,
            },
            2 => WalRecord::PlanCommit {
                lane,
                plan_fp: r.u64()?,
                shard_fp: r.u64()?,
            },
            3 => WalRecord::HostLine {
                lane,
                line: r.u32()?,
                snap: StateSnap::decode(&mut r)?,
            },
            4 => WalRecord::Chunk {
                lane,
                region_start: r.u32()?,
                region_end: r.u32()?,
                chunk: r.u32()?,
                snap: StateSnap::decode(&mut r)?,
            },
            5 => WalRecord::Migration {
                lane,
                line: r.u32()?,
                chunk: r.u32()?,
                reason: r.u8()?,
                state_bytes: r.u64()?,
                snap: StateSnap::decode(&mut r)?,
            },
            6 => WalRecord::Reclaim {
                lane,
                line: r.u32()?,
                in_region: r.bool()?,
                snap: StateSnap::decode(&mut r)?,
            },
            7 => WalRecord::RunEnd {
                lane,
                fingerprint: r.u64()?,
                total_secs_bits: r.u64()?,
            },
            other => return Err(format!("unknown wal record tag {other}")),
        };
        if r.pos != bytes.len() {
            return Err(format!(
                "wal record has {} trailing bytes",
                bytes.len() - r.pos
            ));
        }
        Ok(rec)
    }
}

impl StateSnap {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.clock_bits);
        w.u64(self.transient_faults);
        w.u64(self.retries);
        w.u64(self.recovered_ops);
        w.u64(self.hard_faults);
        w.u64(self.fault_migrations);
        w.u64(self.backoff_bits);
        w.u64(self.flash_read_errors);
        w.u64(self.nvme_command_errors);
        w.u64(self.dma_transfer_errors);
        w.u64(self.cse_crashes);
        w.bool(self.crashed);
        w.u64(self.rng_state);
        match self.monitor {
            Some((raw_bits, decreases)) => {
                w.bool(true);
                w.u64(raw_bits);
                w.u32(decreases);
            }
            None => w.bool(false),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<StateSnap, String> {
        let mut snap = StateSnap {
            clock_bits: r.u64()?,
            transient_faults: r.u64()?,
            retries: r.u64()?,
            recovered_ops: r.u64()?,
            hard_faults: r.u64()?,
            fault_migrations: r.u64()?,
            backoff_bits: r.u64()?,
            flash_read_errors: r.u64()?,
            nvme_command_errors: r.u64()?,
            dma_transfer_errors: r.u64()?,
            cse_crashes: r.u64()?,
            crashed: r.bool()?,
            rng_state: r.u64()?,
            monitor: None,
        };
        if r.bool()? {
            snap.monitor = Some((r.u64()?, r.u32()?));
        }
        Ok(snap)
    }
}

/// Little-endian byte sink for record payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    out: Vec<u8>,
}

impl ByteWriter {
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.out.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (`u32` length).
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u32::MAX` bytes.
    pub fn str(&mut self, v: &str) {
        self.u32(u32::try_from(v.len()).expect("string fits u32"));
        self.out.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed raw byte string (`u32` length).
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds `u32::MAX` bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("byte string fits u32"));
        self.out.extend_from_slice(v);
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("wal payload truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (one byte; anything non-zero is true).
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted.
    pub fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted or the bytes are not UTF-8.
    pub fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
    }

    /// Reads a length-prefixed raw byte string.
    ///
    /// # Errors
    ///
    /// Errors when the payload is exhausted.
    pub fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// The outcome of reading a WAL: the valid record prefix, the byte
/// length of that prefix (including the header), and whether a torn or
/// corrupt tail was discarded to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReadOutcome {
    /// Every record whose frame validated, in append order.
    pub records: Vec<WalRecord>,
    /// File offset one past the last valid record (where appends go).
    pub valid_len: u64,
    /// Whether bytes after `valid_len` were present and discarded.
    pub torn: bool,
}

/// Parses WAL bytes under the torn-tail rule: records are accepted until
/// the first frame whose length prefix, checksum, or payload decode
/// fails; everything from that point on is discarded, never an error. A
/// missing or corrupt magic header yields an empty outcome (the file is
/// treated as garbage from byte 0).
#[must_use]
pub fn parse_wal_bytes(bytes: &[u8]) -> WalReadOutcome {
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalReadOutcome {
            records: Vec::new(),
            valid_len: 0,
            torn: !bytes.is_empty(),
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while let Some(frame) = bytes.get(pos..pos + 12) {
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let checksum = u64::from_le_bytes([
            frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
        ]);
        let start = pos + 12;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break;
        };
        if fnv1a(payload) != checksum {
            break;
        }
        let Ok(rec) = WalRecord::decode(payload) else {
            break;
        };
        records.push(rec);
        pos = start + len as usize;
    }
    WalReadOutcome {
        records,
        valid_len: pos as u64,
        torn: pos != bytes.len(),
    }
}

/// Reads and parses a WAL file under the torn-tail rule.
///
/// # Errors
///
/// Only I/O errors (missing file, unreadable) surface; corruption never
/// does.
pub fn read_wal(path: &Path) -> io::Result<WalReadOutcome> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(parse_wal_bytes(&bytes))
}

/// An append-only WAL writer. Each record is framed, checksummed, and
/// flushed as a unit.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    records: u64,
    kill_after: Option<u64>,
}

impl WalWriter {
    fn kill_after_from_env() -> Option<u64> {
        std::env::var(KILL_ENV).ok()?.parse().ok()
    }

    /// Creates (or truncates) a fresh WAL at `path` and writes the magic
    /// header.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write errors.
    pub fn create(path: &Path) -> io::Result<WalWriter> {
        let mut file = File::create(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.flush()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            kill_after: Self::kill_after_from_env(),
        })
    }

    /// Reopens an existing WAL for appending after a resume: the file is
    /// truncated to `outcome.valid_len` (discarding any torn tail per
    /// the recovery rule) and appends continue from there. A file with
    /// no valid header is rewritten from scratch.
    ///
    /// # Errors
    ///
    /// Propagates file open/truncate errors.
    pub fn append_to(path: &Path, outcome: &WalReadOutcome) -> io::Result<WalWriter> {
        if outcome.valid_len < WAL_MAGIC.len() as u64 {
            return Self::create(path);
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(outcome.valid_len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            records: outcome.records.len() as u64,
            kill_after: Self::kill_after_from_env(),
        })
    }

    /// Appends one record (frame assembled in memory, written and
    /// flushed as a unit). When the `ISP_WAL_KILL_AFTER` hook is armed
    /// and its budget is reached, a deliberately torn frame is written
    /// and the process exits with [`KILL_EXIT_CODE`].
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("record fits u32")
                .to_le_bytes(),
        );
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.records += 1;
        if self.kill_after == Some(self.records) {
            // Simulate a crash mid-append: a frame header promising more
            // payload than will ever arrive.
            let torn = [0xEEu8; 12 + 5];
            let _ = self.file.write_all(&torn);
            let _ = self.file.flush();
            std::process::exit(KILL_EXIT_CODE);
        }
        Ok(())
    }

    /// Records appended so far (including any pre-existing records when
    /// opened via [`WalWriter::append_to`]).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file being written.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn snap(seed: u64) -> StateSnap {
        StateSnap {
            clock_bits: (seed as f64 * 0.25).to_bits(),
            transient_faults: seed,
            retries: seed / 2,
            recovered_ops: seed / 3,
            hard_faults: seed % 2,
            fault_migrations: seed % 3,
            backoff_bits: (seed as f64 * 1e-4).to_bits(),
            flash_read_errors: seed % 5,
            nvme_command_errors: seed % 7,
            dma_transfer_errors: seed % 11,
            cse_crashes: seed % 2,
            crashed: seed % 2 == 1,
            rng_state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            monitor: if seed.is_multiple_of(2) {
                Some(((seed as f64).to_bits(), (seed % 9) as u32))
            } else {
                None
            },
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::PlanCommit {
                lane: 0,
                plan_fp: 0xDEAD_BEEF,
                shard_fp: 0,
            },
            WalRecord::RunStart {
                lane: 0,
                program_len: 7,
                backend: 0,
            },
            WalRecord::HostLine {
                lane: 0,
                line: 0,
                snap: snap(1),
            },
            WalRecord::Chunk {
                lane: 0,
                region_start: 1,
                region_end: 4,
                chunk: 0,
                snap: snap(2),
            },
            WalRecord::Migration {
                lane: 0,
                line: 2,
                chunk: 17,
                reason: 2,
                state_bytes: 4096,
                snap: snap(3),
            },
            WalRecord::Reclaim {
                lane: 1,
                line: 3,
                in_region: true,
                snap: snap(4),
            },
            WalRecord::RunEnd {
                lane: 0,
                fingerprint: 0x1234_5678_9ABC_DEF0,
                total_secs_bits: 1.25f64.to_bits(),
            },
        ]
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("isp_wal_{}_{name}.wal", std::process::id()))
    }

    #[test]
    fn records_round_trip_through_payload_codec() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload), Ok(rec), "{}", rec.kind());
        }
    }

    #[test]
    fn decode_rejects_trailing_and_truncated_payloads() {
        let rec = sample_records()[2];
        let mut payload = rec.encode();
        payload.push(0);
        assert!(WalRecord::decode(&payload).is_err(), "trailing byte");
        let payload = rec.encode();
        assert!(
            WalRecord::decode(&payload[..payload.len() - 1]).is_err(),
            "truncated payload"
        );
        assert!(WalRecord::decode(&[99, 0, 0, 0, 0]).is_err(), "unknown tag");
    }

    #[test]
    fn write_then_read_yields_identical_records() {
        let path = tmp_path("round_trip");
        let recs = sample_records();
        let mut w = WalWriter::create(&path).expect("create");
        for r in &recs {
            w.append(r).expect("append");
        }
        assert_eq!(w.records(), recs.len() as u64);
        let out = read_wal(&path).expect("read");
        assert_eq!(out.records, recs);
        assert!(!out.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let path = tmp_path("torn_tail");
        let recs = sample_records();
        let mut w = WalWriter::create(&path).expect("create");
        for r in &recs {
            w.append(r).expect("append");
        }
        drop(w);
        // Simulate a crash mid-append: garbage frame header at the end.
        let mut bytes = std::fs::read(&path).expect("read bytes");
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[0xAB; 9]);
        std::fs::write(&path, &bytes).expect("write torn");
        let out = read_wal(&path).expect("read");
        assert_eq!(out.records, recs);
        assert!(out.torn);
        assert_eq!(out.valid_len, clean_len as u64);
        // append_to truncates the tail and continues cleanly.
        let mut w = WalWriter::append_to(&path, &out).expect("append_to");
        assert_eq!(w.records(), recs.len() as u64);
        w.append(&recs[0]).expect("append after resume");
        let reread = read_wal(&path).expect("reread");
        assert!(!reread.torn);
        assert_eq!(reread.records.len(), recs.len() + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_truncates_from_that_record() {
        let path = tmp_path("corrupt");
        let recs = sample_records();
        let mut w = WalWriter::create(&path).expect("create");
        for r in &recs {
            w.append(r).expect("append");
        }
        drop(w);
        let mut bytes = std::fs::read(&path).expect("read bytes");
        // Flip one payload byte of the third record: everything from
        // there is discarded (completion order ⇒ no holes allowed).
        let mut pos = WAL_MAGIC.len();
        for _ in 0..2 {
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            pos += 12 + len as usize;
        }
        bytes[pos + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupt");
        let out = read_wal(&path).expect("read");
        assert_eq!(out.records, recs[..2]);
        assert!(out.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_header_reads_as_empty() {
        assert_eq!(
            parse_wal_bytes(b"not a wal"),
            WalReadOutcome {
                records: vec![],
                valid_len: 0,
                torn: true,
            }
        );
        assert_eq!(
            parse_wal_bytes(&[]),
            WalReadOutcome {
                records: vec![],
                valid_len: 0,
                torn: false,
            }
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Satellite: ANY byte-prefix of a valid WAL reopens cleanly and
        /// yields a record-prefix of the full log — the crash model is
        /// "the file ends wherever the kernel stopped writing".
        #[test]
        fn any_byte_prefix_reopens_to_a_record_prefix(cut in 0usize..600, extra in 0usize..7) {
            let recs = sample_records();
            let mut bytes = WAL_MAGIC.to_vec();
            for r in &recs {
                let payload = r.encode();
                bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
                bytes.extend_from_slice(&payload);
            }
            let cut = cut.min(bytes.len());
            let mut prefix = bytes[..cut].to_vec();
            // A crash can also leave junk past the cut (reused sectors).
            prefix.extend(std::iter::repeat_n(0xEE, extra));
            let out = parse_wal_bytes(&prefix);
            prop_assert!(out.records.len() <= recs.len());
            prop_assert_eq!(&out.records[..], &recs[..out.records.len()]);
            prop_assert_eq!(out.torn, out.valid_len != prefix.len() as u64);
            // The valid prefix re-parses to exactly the same records.
            let reparsed = parse_wal_bytes(&prefix[..out.valid_len as usize]);
            prop_assert_eq!(reparsed.records, out.records);
            prop_assert!(!reparsed.torn);
        }
    }
}
