//! # isp-obs — unified tracing & metrics for the ActivePy reproduction
//!
//! The pipeline (sampling → fit → Eq. 1 profit → Algorithm 1 → compile →
//! monitored execution) runs against **two clocks**: the host's wall
//! clock, which measures what the repro process actually spends, and the
//! simulated device clock, which measures what the modelled platform
//! would spend. This crate records both on every span so a trace answers
//! "where did repro wall-clock go?" and "where did simulated time go?"
//! from one journal.
//!
//! Three pieces:
//!
//! * [`span`] — the dual-clock span/event model and the [`Tracer`]
//!   handle. A disabled tracer (the default) is a `None` behind one
//!   branch: no allocation, no locking, no clock reads, so untraced runs
//!   are byte-identical to pre-tracing behavior.
//! * [`metrics`] — a registry of monotonic counters and fixed-log2-bucket
//!   histograms with deterministic (sorted) snapshot ordering. It absorbs
//!   the previously scattered counter structs (plan cache, fault
//!   injector, recovery, kernel engine) into one namespace.
//! * [`export`] / [`journal`] — JSONL event-journal and Chrome
//!   `trace_event` exporters (loadable in `chrome://tracing` / Perfetto,
//!   with simulated time rendered as a second process track), plus the
//!   parser/summarizer behind the `trace` analysis binary.
//!
//! **Determinism contract:** event identity, ordering, names, kinds,
//! attributes, and simulated times depend only on the traced computation;
//! only `wall_ns` fields vary run to run. Exporters therefore accept a
//! `mask_wall` flag that zeroes wall-clock fields, after which two traced
//! runs of the same seed emit byte-identical journals.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod journal;
pub mod metrics;
pub mod span;
pub mod wal;

pub use journal::{
    diff_journals, footer_snapshot, parse_journal, render_diff, summarize, Journal, JournalDiff,
    PhaseDelta,
};
pub use metrics::{Histogram, MetricsRegistry, RegistrySnapshot};
pub use span::{
    AttrValue, Attrs, InstantEvent, MemorySink, Span, SpanHandle, SpanKind, TraceEvent, TraceSink,
    Tracer,
};
pub use wal::{
    fnv1a, parse_wal_bytes, read_wal, ByteReader, ByteWriter, StateSnap, WalReadOutcome, WalRecord,
    WalWriter, KILL_ENV, KILL_EXIT_CODE,
};
