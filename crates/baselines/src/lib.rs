//! # isp-baselines — the comparison points of the ActivePy evaluation
//!
//! Three baselines appear throughout the paper's §V:
//!
//! * **The C baseline** ([`host_only::run_c_baseline`]): the whole
//!   application hand-written in C, running entirely on the host — the
//!   denominator of every reported speedup. The other language tiers
//!   (plain Python, Cython, copy-eliminated) share the same entry point
//!   via [`host_only::run_host_only`].
//! * **Programmer-directed ISP**
//!   ([`programmer_directed::best_static_plan`]): an exhaustive search over
//!   single-entry-single-exit offload combinations at 100 % CSD
//!   availability — the best a human could do with a conventional C
//!   framework.
//! * **The static framework under dynamics**
//!   ([`programmer_directed::run_plan`]): the same baked-in plan re-run
//!   under contention with no ability to migrate — the Summarizer-style
//!   configuration Figures 2 and 5 stress.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod host_only;
pub mod programmer_directed;

pub use error::BaselineError;
pub use host_only::{run_c_baseline, run_host_only, run_host_only_with};
pub use programmer_directed::{best_static_plan, run_plan, OffloadPlan};
