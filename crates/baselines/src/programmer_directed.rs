//! The programmer-directed ISP baseline (§V).
//!
//! "To create an optimal programmer-directed code for each C application,
//! we exhaustively tried to offload all reasonable combinations of
//! single-entry-single-exit code regions … when the CSD entirely dedicated
//! itself to the running program. We select the combination that delivers
//! the shortest end-to-end latency."
//!
//! Because data flows forward through these pipelines, the reasonable
//! combinations are the contiguous line ranges (plus the empty plan); the
//! search simulates every one at native tier under full CSD availability
//! and keeps the fastest. The returned [`OffloadPlan`] can then be re-run
//! under any contention scenario — that re-run *is* the Summarizer-style
//! static framework of Figures 2 and 5.

use crate::error::{BaselineError, Result};
use activepy::exec::{execute, ExecOptions, RunReport};
use alang::CostParams;
use csd_sim::contention::ContentionScenario;
use csd_sim::{EngineKind, SystemConfig};
use isp_workloads::Workload;
use serde::{Deserialize, Serialize};

/// A fixed, compiler-baked offload decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadPlan {
    /// Per-line engine placement.
    pub placements: Vec<EngineKind>,
    /// The offloaded contiguous range, if any (inclusive).
    pub range: Option<(usize, usize)>,
    /// End-to-end latency measured during the search (100 % CSD
    /// availability, native code).
    pub optimized_secs: f64,
}

impl OffloadPlan {
    /// Line indices offloaded by this plan.
    #[must_use]
    pub fn csd_lines(&self) -> Vec<usize> {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == EngineKind::Cse)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Exhaustively searches contiguous offload ranges for the plan with the
/// shortest end-to-end latency at 100 % CSD availability, in C (native)
/// code — the paper's optimal programmer-directed configuration.
///
/// # Errors
///
/// Propagates parse/execution failures from candidate runs.
pub fn best_static_plan(workload: &Workload, config: &SystemConfig) -> Result<OffloadPlan> {
    let program = workload.program()?;
    let storage = workload.storage_at(1.0);
    let n = program.len();
    if n == 0 {
        return Err(BaselineError::search("cannot plan an empty program"));
    }
    let mut best: Option<OffloadPlan> = None;
    let mut candidates: Vec<Option<(usize, usize)>> = vec![None];
    for i in 0..n {
        for j in i..n {
            candidates.push(Some((i, j)));
        }
    }
    for range in candidates {
        let placements: Vec<EngineKind> = (0..n)
            .map(|k| match range {
                Some((i, j)) if k >= i && k <= j => EngineKind::Cse,
                _ => EngineKind::Host,
            })
            .collect();
        let mut system = config.build();
        let opts = ExecOptions::native_static();
        let report = execute(
            &program,
            &storage,
            &placements,
            &mut system,
            &opts,
            None,
            &[],
        )?;
        let candidate = OffloadPlan {
            placements,
            range,
            optimized_secs: report.total_secs,
        };
        if best
            .as_ref()
            .is_none_or(|b| candidate.optimized_secs < b.optimized_secs)
        {
            best = Some(candidate);
        }
    }
    best.ok_or_else(|| BaselineError::search("no candidate plan produced a report"))
}

/// Re-runs a fixed plan under `scenario` with no migration capability —
/// the behaviour of a conventional compiled ISP framework when the world
/// changes after the code was written.
///
/// # Errors
///
/// Propagates parse/execution failures.
pub fn run_plan(
    workload: &Workload,
    config: &SystemConfig,
    plan: &OffloadPlan,
    scenario: ContentionScenario,
) -> Result<RunReport> {
    let program = workload.program()?;
    if plan.placements.len() != program.len() {
        return Err(BaselineError::search(format!(
            "plan has {} placements for a {}-line program",
            plan.placements.len(),
            program.len()
        )));
    }
    let storage = workload.storage_at(1.0);
    let mut system = config.build();
    let opts = ExecOptions {
        tier: alang::ExecTier::Native,
        params: CostParams::paper_default(),
        scenario,
        monitor: None,
        offload_overheads: true,
        preempt_at: None,
        backend: alang::ExecBackend::default(),
        recovery: activepy::RecoveryPolicy::default(),
        faults: csd_sim::fault::FaultPlan::none(),
        parallel: alang::ParallelPolicy::default(),
        tracer: isp_obs::Tracer::disabled(),
        profile: activepy::ProfileRecorder::disabled(),
        journal: activepy::ExecJournal::disabled(),
    };
    let report = execute(
        &program,
        &storage,
        &plan.placements,
        &mut system,
        &opts,
        None,
        &[],
    )?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_only::run_c_baseline;

    #[test]
    fn search_beats_or_matches_host_only() {
        let config = SystemConfig::paper_default();
        let q6 = isp_workloads::by_name("TPC-H-6").expect("q6");
        let plan = best_static_plan(&q6, &config).expect("plan");
        let host = run_c_baseline(&q6, &config).expect("host");
        assert!(
            plan.optimized_secs <= host.total_secs + 1e-9,
            "search must never lose to the empty plan: {} vs {}",
            plan.optimized_secs,
            host.total_secs
        );
        assert!(
            plan.range.is_some(),
            "Q6 is the archetypal ISP query; something should offload"
        );
    }

    #[test]
    fn plan_rerun_reproduces_search_latency() {
        let config = SystemConfig::paper_default();
        let q6 = isp_workloads::by_name("TPC-H-6").expect("q6");
        let plan = best_static_plan(&q6, &config).expect("plan");
        let rep = run_plan(&q6, &config, &plan, ContentionScenario::none()).expect("rerun");
        assert!(
            (rep.total_secs - plan.optimized_secs).abs() / plan.optimized_secs < 1e-9,
            "deterministic simulator must reproduce the search result"
        );
    }

    #[test]
    fn contention_degrades_a_fixed_plan() {
        let config = SystemConfig::paper_default();
        let q6 = isp_workloads::by_name("TPC-H-6").expect("q6");
        let plan = best_static_plan(&q6, &config).expect("plan");
        let full = run_plan(&q6, &config, &plan, ContentionScenario::none()).expect("full");
        let starved =
            run_plan(&q6, &config, &plan, ContentionScenario::constant(0.1)).expect("starved");
        assert!(
            starved.total_secs > full.total_secs * 1.3,
            "10% availability must hurt a static plan: {} vs {}",
            starved.total_secs,
            full.total_secs
        );
    }

    #[test]
    fn plan_length_mismatch_is_rejected() {
        let config = SystemConfig::paper_default();
        let q6 = isp_workloads::by_name("TPC-H-6").expect("q6");
        let bad = OffloadPlan {
            placements: vec![EngineKind::Host; 2],
            range: None,
            optimized_secs: 0.0,
        };
        assert!(run_plan(&q6, &config, &bad, ContentionScenario::none()).is_err());
    }
}
