//! Error types for the baseline implementations.

use activepy::ActivePyError;
use alang::LangError;
use std::fmt;

/// Failures raised while building or running a baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// A program failed to parse or evaluate.
    Lang(LangError),
    /// The ActivePy execution engine reported a failure.
    Exec(ActivePyError),
    /// The offload search could not produce a plan.
    Search {
        /// Explanation.
        message: String,
    },
}

impl BaselineError {
    /// Shorthand for a search failure.
    #[must_use]
    pub fn search(message: impl Into<String>) -> Self {
        BaselineError::Search {
            message: message.into(),
        }
    }
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Lang(e) => write!(f, "language error: {e}"),
            BaselineError::Exec(e) => write!(f, "execution error: {e}"),
            BaselineError::Search { message } => write!(f, "offload search error: {message}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Lang(e) => Some(e),
            BaselineError::Exec(e) => Some(e),
            BaselineError::Search { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<LangError> for BaselineError {
    fn from(e: LangError) -> Self {
        BaselineError::Lang(e)
    }
}

#[doc(hidden)]
impl From<ActivePyError> for BaselineError {
    fn from(e: ActivePyError) -> Self {
        BaselineError::Exec(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: BaselineError = LangError::runtime("x").into();
        assert!(e.source().is_some());
        assert!(format!("{}", BaselineError::search("none")).contains("none"));
    }
}
