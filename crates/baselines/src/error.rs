//! Error handling for the baseline implementations.
//!
//! The baselines used to carry their own near-duplicate error enum; it is
//! now folded into the core taxonomy — [`activepy::ActivePyError`] grew a
//! structured `Search` variant (plus the `Transient`/`DeviceFault` fault
//! kinds), so this module is only the aliases keeping the baselines'
//! vocabulary intact.

/// Failures raised while building or running a baseline — an alias for the
/// unified runtime taxonomy.
pub use activepy::error::ActivePyError as BaselineError;

/// Convenience alias used throughout the crate.
pub use activepy::error::Result;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_errors_keep_their_shape_through_the_alias() {
        let e = BaselineError::search("none");
        assert!(matches!(e, BaselineError::Search { .. }));
        let msg = format!("{e}");
        assert!(msg.contains("offload search"), "got: {msg}");
        assert!(msg.contains("none"), "got: {msg}");
        assert!(!e.is_retryable(), "a failed search is not a device blip");
    }

    #[test]
    fn lang_errors_still_convert() {
        let e: BaselineError = alang::LangError::runtime("x").into();
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
