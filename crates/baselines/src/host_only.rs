//! The no-CSD baselines: the hand-written C implementation and the three
//! language-runtime tiers (§V, "ActivePy's optimizations in its language
//! runtime").
//!
//! All four run the same workload entirely on the host; they differ only in
//! the code tier — [`ExecTier::Native`] is the paper's C baseline (the
//! denominator of every speedup), [`ExecTier::Interpreted`] is plain
//! Python, [`ExecTier::Compiled`] is Cython output, and
//! [`ExecTier::CompiledCopyElim`] is ActivePy's generated host code.

use crate::error::Result;
use activepy::exec::{execute_all_host_with, RunReport};
use activepy::sampling::observe_dataset_types;
use alang::copyelim::eliminable_lines;
use alang::{CostParams, ExecBackend, ExecTier};
use csd_sim::SystemConfig;
use isp_workloads::Workload;

/// Runs `workload` entirely on the host at the given code `tier` using the
/// default (VM) backend, returning the execution report.
///
/// Copy elimination (for [`ExecTier::CompiledCopyElim`]) uses dataset types
/// observed from a tiny probe materialization, mirroring what ActivePy
/// learns during sampling.
///
/// # Errors
///
/// Propagates parse and execution failures.
pub fn run_host_only(
    workload: &Workload,
    config: &SystemConfig,
    tier: ExecTier,
) -> Result<RunReport> {
    run_host_only_with(workload, config, tier, ExecBackend::default())
}

/// As [`run_host_only`], on an explicit evaluation backend.
///
/// # Errors
///
/// Propagates parse and execution failures.
pub fn run_host_only_with(
    workload: &Workload,
    config: &SystemConfig,
    tier: ExecTier,
    backend: ExecBackend,
) -> Result<RunReport> {
    let program = workload.program()?;
    let storage = workload.storage_at(1.0);
    let copy_elim = match tier {
        ExecTier::CompiledCopyElim => {
            let probe = workload.storage_at(1.0 / 1024.0);
            eliminable_lines(&program, &observe_dataset_types(&probe))
        }
        _ => vec![false; program.len()],
    };
    let mut system = config.build();
    let report = execute_all_host_with(
        &program,
        &storage,
        &mut system,
        tier,
        &CostParams::paper_default(),
        &copy_elim,
        backend,
    )?;
    Ok(report)
}

/// Runs the C (native, host-only) baseline — the paper's reference point.
///
/// # Errors
///
/// Propagates parse and execution failures.
pub fn run_c_baseline(workload: &Workload, config: &SystemConfig) -> Result<RunReport> {
    run_host_only(workload, config, ExecTier::Native)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_baseline_runs_all_workloads() {
        let config = SystemConfig::paper_default();
        for w in isp_workloads::with_sparsemv() {
            let rep =
                run_c_baseline(&w, &config).unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(rep.total_secs > 0.0, "{} took no time", w.name());
            assert_eq!(rep.csd_lines_executed, 0);
        }
    }

    #[test]
    fn runtime_tier_ladder_holds_per_workload() {
        let config = SystemConfig::paper_default();
        for w in isp_workloads::table1() {
            let native = run_host_only(&w, &config, ExecTier::Native)
                .expect("native")
                .total_secs;
            let elim = run_host_only(&w, &config, ExecTier::CompiledCopyElim)
                .expect("elim")
                .total_secs;
            let compiled = run_host_only(&w, &config, ExecTier::Compiled)
                .expect("compiled")
                .total_secs;
            let interp = run_host_only(&w, &config, ExecTier::Interpreted)
                .expect("interp")
                .total_secs;
            assert!(
                native <= elim + 1e-9 && elim <= compiled && compiled < interp,
                "{}: ladder violated ({native}, {elim}, {compiled}, {interp})",
                w.name()
            );
        }
    }

    #[test]
    fn backends_agree_on_every_tier() {
        let config = SystemConfig::paper_default();
        let q6 = isp_workloads::by_name("TPC-H-6").expect("q6");
        for tier in [
            ExecTier::Native,
            ExecTier::CompiledCopyElim,
            ExecTier::Compiled,
            ExecTier::Interpreted,
        ] {
            let vm = run_host_only_with(&q6, &config, tier, ExecBackend::Vm).expect("vm");
            let ast = run_host_only_with(&q6, &config, tier, ExecBackend::AstWalk).expect("ast");
            assert_eq!(vm, ast, "{tier:?} diverged between backends");
        }
    }

    #[test]
    fn c_baseline_latencies_are_seconds_scale() {
        // The paper's baselines run 11-73 s on the Ryzen testbed; our
        // simulated host should land in the same order of magnitude.
        let config = SystemConfig::paper_default();
        for w in isp_workloads::table1() {
            let rep = run_c_baseline(&w, &config).expect("run");
            assert!(
                rep.total_secs > 0.5 && rep.total_secs < 200.0,
                "{}: {}s out of plausible range",
                w.name(),
                rep.total_secs
            );
        }
    }
}
