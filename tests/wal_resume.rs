//! Crash-resume differential: random programs × random placements ×
//! random deterministic fault plans × a kill at a random byte offset of
//! the execution journal, across fleet sizes N ∈ {1, 4} and both
//! evaluation backends. The invariants the resume path must hold, for
//! every draw:
//!
//! 1. **Same answer** — a run resumed from any prefix of the journal
//!    (including a torn mid-record tail) finishes with the exact
//!    `values_fingerprint` of the uninterrupted run.
//! 2. **Same history** — after the resumed run completes, the journal
//!    file holds byte-for-byte the record stream of the uninterrupted
//!    run: replay verified the surviving prefix and append wrote the
//!    missing suffix, with no duplicates and no gaps.
//! 3. **Same accounting** — migrations and the recovery layer's stats
//!    (retries, transient faults, backoff) match the uninterrupted run
//!    exactly; retries consumed before the crash are re-consumed, not
//!    double-counted.
//!
//! Plus the warm-start half of persistence: a fresh process that loads a
//! warm file re-plans with **zero** datagen calls and gets a
//! byte-identical plan.

use activepy::exec::{execute, ExecOptions, RunReport};
use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::{execute_sharded_raw, ActivePyError, ExecJournal, PlanCache};
use alang::builtins::Storage;
use alang::parser::parse;
use alang::shard::{ShardMap, ShardStrategy};
use alang::value::ArrayVal;
use alang::{ExecBackend, Value};
use csd_sim::fault::FaultPlan;
use csd_sim::units::{Duration, SimTime};
use csd_sim::{ContentionScenario, EngineKind, SystemConfig};
use isp_obs::wal::{read_wal, WAL_MAGIC};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const VARS: [&str; 4] = ["a", "b", "c", "d"];
const FNS: [&str; 5] = ["sum", "mean", "sqrt", "abs", "len"];
const OPS: [&str; 8] = ["+", "-", "*", "/", "<", ">", "==", "!="];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep (the
/// chaos-differential grammar).
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner, 0usize..FNS.len()).prop_map(|(e, f)| format!("{}({e})", FNS[f])),
        ]
    })
}

fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..64).map(|i| f64::from(i % 10)).collect(),
            1_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..32).map(|i| f64::from(i) - 16.0).collect(),
            500_000,
        )),
    );
    st
}

/// A random but valid fault plan (same envelope as the chaos test).
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000,
        0.0f64..0.3,
        0.0f64..0.3,
        0.0f64..0.3,
        (any::<bool>(), 0.0f64..0.05),
        (any::<bool>(), 0.0f64..0.05, 0.0f64..0.05, 0.05f64..1.0),
    )
        .prop_map(|(seed, flash, nvme, dma, crash, gc)| {
            let mut plan = FaultPlan::none()
                .with_seed(seed)
                .with_flash_read_error_prob(flash)
                .with_nvme_error_prob(nvme)
                .with_dma_error_prob(dma);
            if crash.0 {
                plan = plan.with_crash_at(SimTime::from_secs(crash.1));
            }
            if gc.0 {
                plan =
                    plan.with_gc_burst(SimTime::from_secs(gc.1), Duration::from_secs(gc.2), gc.3);
            }
            plan
        })
}

/// Unique temp path per call: tests run concurrently in one process.
fn wal_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("activepy_wal_{}_{tag}_{n}.wal", std::process::id()))
}

/// Simulates a kill: keeps only the first `frac` of the journal's bytes
/// (always at least the magic, so the file reads as a valid-but-short
/// WAL; offsets inside a record exercise the torn-tail rule).
fn truncate_at_fraction(path: &std::path::Path, frac: f64) -> u64 {
    let bytes = std::fs::read(path).expect("journal exists");
    let min = WAL_MAGIC.len();
    let keep = min + ((bytes.len() - min) as f64 * frac).floor() as usize;
    std::fs::write(path, &bytes[..keep]).expect("truncate journal");
    keep as u64
}

fn one_unsharded(
    src: &str,
    placements: &[EngineKind],
    backend: ExecBackend,
    faults: &FaultPlan,
    journal: ExecJournal,
) -> Result<RunReport, ActivePyError> {
    let program = parse(src).expect("generated source parses");
    let st = storage();
    let mut system = SystemConfig::paper_default().build();
    let opts = ExecOptions::activepy()
        .with_backend(backend)
        .with_faults(faults.clone())
        .with_journal(journal);
    execute(&program, &st, placements, &mut system, &opts, None, &[])
}

/// Asserts the resumed run's observable outcome equals the
/// uninterrupted run's, field by field.
fn assert_same_outcome(
    full: &RunReport,
    resumed: &RunReport,
    src: &str,
    tag: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        full.values_fingerprint,
        resumed.values_fingerprint,
        "[{}] resume changed the answer for:\n{}",
        tag,
        src
    );
    prop_assert_eq!(
        &full.migration,
        &resumed.migration,
        "[{}] resume changed the migration outcome for:\n{}",
        tag,
        src
    );
    let a = &full.metrics.recovery;
    let b = &resumed.metrics.recovery;
    prop_assert_eq!(a.transient_faults, b.transient_faults);
    prop_assert_eq!(a.retries, b.retries, "[{}] retry accounting diverged", tag);
    prop_assert_eq!(a.recovered_ops, b.recovered_ops);
    prop_assert_eq!(a.hard_faults, b.hard_faults);
    prop_assert_eq!(a.fault_migrations, b.fault_migrations);
    prop_assert_eq!(a.backoff_secs.to_bits(), b.backoff_secs.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kill-at-random-point chaos: record a journaled run, cut the
    /// journal at an arbitrary byte offset, resume, and demand the
    /// uninterrupted outcome — unsharded and as an N=4 fleet, on both
    /// backends.
    #[test]
    fn resumed_runs_reach_the_uninterrupted_outcome(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..6),
        on_csd in prop::collection::vec(any::<bool>(), 6..7),
        faults in fault_plan(),
        kill_frac in 0.0f64..1.0,
    ) {
        let src: String = lines
            .iter()
            .map(|(t, e)| format!("{} = {e}\n", VARS[*t]))
            .collect();
        let placements: Vec<EngineKind> = (0..lines.len())
            .map(|i| if on_csd[i] { EngineKind::Cse } else { EngineKind::Host })
            .collect();

        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            // --- Unsharded (fleet of one device) ---
            let path = wal_path("solo");
            let journal = ExecJournal::record_to(&path).expect("create journal");
            let full = one_unsharded(&src, &placements, backend, &faults, journal);
            let Ok(full) = full else {
                // Invalid programs (reads of undefined names) fail with
                // or without a journal; nothing to resume.
                std::fs::remove_file(&path).ok();
                continue;
            };
            let reference = read_wal(&path).expect("read full journal");
            prop_assert!(!reference.torn, "uninterrupted journal must be clean");
            prop_assert!(reference.records.len() >= 2, "at least RunStart + RunEnd");

            truncate_at_fraction(&path, kill_frac);
            let (journal, info) = ExecJournal::resume_from(&path).expect("resume");
            prop_assert!(info.records <= reference.records.len());
            let resumed = one_unsharded(&src, &placements, backend, &faults, journal)
                .expect("resumed run succeeds");
            assert_same_outcome(&full, &resumed, &src, "solo")?;

            // Invariant 2: the healed journal is the uninterrupted one.
            let healed = read_wal(&path).expect("read healed journal");
            prop_assert!(!healed.torn);
            prop_assert_eq!(
                &healed.records, &reference.records,
                "healed journal diverged from the uninterrupted record \
                 stream for:\n{}", src
            );
            std::fs::remove_file(&path).ok();

            // --- N=4 fleet: shard lanes + host tail lane ---
            let program = parse(&src).expect("parses");
            let st = storage();
            let config = SystemConfig::paper_default();
            let map = ShardMap::auto(&st, 4, ShardStrategy::Range);
            let shard_faults: Vec<FaultPlan> = (0..4)
                .map(|s| faults.clone().with_seed(97 * s as u64 + 13))
                .collect();
            let fpath = wal_path("fleet");
            let journal = ExecJournal::record_to(&fpath).expect("create fleet journal");
            let opts = ExecOptions::activepy()
                .with_backend(backend)
                .with_journal(journal);
            let fleet_full = execute_sharded_raw(
                &program, &st, &map, &placements, &config, &opts, &shard_faults, 4,
            ).expect("fleet runs where the unsharded run ran");
            let fleet_ref = read_wal(&fpath).expect("read fleet journal");
            prop_assert!(!fleet_ref.torn);

            truncate_at_fraction(&fpath, kill_frac);
            let (journal, _) = ExecJournal::resume_from(&fpath).expect("fleet resume");
            let opts = ExecOptions::activepy()
                .with_backend(backend)
                .with_journal(journal);
            let fleet_resumed = execute_sharded_raw(
                &program, &st, &map, &placements, &config, &opts, &shard_faults, 4,
            ).expect("resumed fleet run succeeds");
            prop_assert_eq!(
                fleet_full.values_fingerprint,
                fleet_resumed.values_fingerprint,
                "fleet resume changed the answer for:\n{}", src
            );
            prop_assert_eq!(
                fleet_full.recovered_transients(),
                fleet_resumed.recovered_transients(),
            );
            let healed = read_wal(&fpath).expect("read healed fleet journal");
            prop_assert!(!healed.torn);
            prop_assert_eq!(
                &healed.records, &fleet_ref.records,
                "healed fleet journal diverged for:\n{}", src
            );
            std::fs::remove_file(&fpath).ok();
        }
    }
}

/// Satellite regression: retries consumed before the crash are
/// re-consumed against `max_retries` on resume, not double-counted. A
/// heavy transient fault plan guarantees real retry traffic, the cut at
/// 60% of the journal lands mid-stream, and the resumed accounting must
/// be bit-exact.
#[test]
fn resume_reconsumes_retries_exactly() {
    let src = "a = scan('v')\nb = sum((a * 2))\nc = mean(scan('w'))\nd = (b + c)\n";
    let placements = [
        EngineKind::Cse,
        EngineKind::Cse,
        EngineKind::Cse,
        EngineKind::Host,
    ];
    let faults = FaultPlan::none()
        .with_seed(7)
        .with_flash_read_error_prob(0.25)
        .with_nvme_error_prob(0.2)
        .with_dma_error_prob(0.2);

    for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
        let path = wal_path("retries");
        let journal = ExecJournal::record_to(&path).expect("create journal");
        let full =
            one_unsharded(src, &placements, backend, &faults, journal).expect("uninterrupted run");
        assert!(
            full.metrics.recovery.retries > 0,
            "fault plan must force retries for the regression to bite"
        );

        truncate_at_fraction(&path, 0.6);
        let (journal, info) = ExecJournal::resume_from(&path).expect("resume");
        assert!(info.records > 0, "a 60% cut keeps some records");
        let resumed =
            one_unsharded(src, &placements, backend, &faults, journal).expect("resumed run");

        let a = &full.metrics.recovery;
        let b = &resumed.metrics.recovery;
        assert_eq!(a.retries, b.retries, "retries double- or under-counted");
        assert_eq!(a.transient_faults, b.transient_faults);
        assert_eq!(a.recovered_ops, b.recovered_ops);
        assert_eq!(a.hard_faults, b.hard_faults);
        assert_eq!(a.fault_migrations, b.fault_migrations);
        assert_eq!(a.backoff_secs.to_bits(), b.backoff_secs.to_bits());
        assert_eq!(full.values_fingerprint, resumed.values_fingerprint);
        std::fs::remove_file(&path).ok();
    }
}

/// A run resumed against a *different* fault plan diverges from the
/// journal and must say so, not silently produce a different history.
#[test]
fn resume_against_different_faults_is_detected() {
    let src = "a = scan('v')\nb = sum((a * 3))\nc = (b / 2)\n";
    let placements = [EngineKind::Cse, EngineKind::Cse, EngineKind::Host];
    let faults = FaultPlan::none()
        .with_seed(11)
        .with_flash_read_error_prob(0.3)
        .with_nvme_error_prob(0.3);

    let path = wal_path("divergence");
    let journal = ExecJournal::record_to(&path).expect("create journal");
    let full = one_unsharded(src, &placements, ExecBackend::Vm, &faults, journal)
        .expect("uninterrupted run");
    assert!(full.metrics.recovery.transient_faults > 0);

    let (journal, _) = ExecJournal::resume_from(&path).expect("resume");
    let other = faults.with_seed(12);
    let err = one_unsharded(src, &placements, ExecBackend::Vm, &other, journal)
        .expect_err("a different fault stream cannot match the journal");
    assert!(
        err.to_string().contains("journal divergence"),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// Warm-start persistence: a fresh cache that loads the warm file plans
/// with zero datagen calls and produces a byte-identical plan.
#[test]
fn warm_start_replans_identically_with_zero_datagen_calls() {
    let src = "a = scan('v')\nb = scan('w')\nc = sum((a * 2))\nd = (c + mean(b))\n";
    let program = parse(src).expect("parses");
    let config = SystemConfig::paper_default();

    fn input_at(scale: f64) -> Storage {
        let logical = (scale * 1e9).round().max(100.0) as u64;
        let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
        let mut st = Storage::new();
        st.insert(
            "v",
            Value::Array(ArrayVal::with_logical(
                (0..actual).map(|i| (i % 100) as f64).collect(),
                logical,
            )),
        );
        st.insert(
            "w",
            Value::Array(ArrayVal::with_logical(
                (0..actual).map(|i| (i % 97) as f64 - 48.0).collect(),
                logical / 2,
            )),
        );
        st
    }

    let path = std::env::temp_dir().join(format!("activepy_warm_{}.bin", std::process::id()));

    // Process 1: cold plan (datagen runs), then persist.
    let rt1 = ActivePy::with_options(ActivePyOptions::default());
    let cache1 = PlanCache::new();
    let cold_calls = AtomicU64::new(0);
    let counting1 = |scale: f64| {
        cold_calls.fetch_add(1, Ordering::Relaxed);
        input_at(scale)
    };
    let cold = cache1
        .plan_for(&rt1, "warm", &program, &counting1, &config)
        .expect("cold plan");
    assert!(
        cold_calls.load(Ordering::Relaxed) > 0,
        "cold planning must sample the input source"
    );
    cache1.save_warm(&path).expect("save warm file");

    // Process 2 (simulated): fresh cache, load, re-plan. The counter
    // proves the input source is never consulted.
    let rt2 = ActivePy::with_options(ActivePyOptions::default());
    let cache2 = PlanCache::new();
    let loaded = cache2.load_warm(&path).expect("load warm file");
    assert_eq!(loaded, 1, "one seed persisted");
    let warm_calls = AtomicU64::new(0);
    let counting2 = |scale: f64| {
        warm_calls.fetch_add(1, Ordering::Relaxed);
        input_at(scale)
    };
    let warm = cache2
        .plan_for(&rt2, "warm", &program, &counting2, &config)
        .expect("warm plan");
    assert_eq!(
        warm_calls.load(Ordering::Relaxed),
        0,
        "warm start must not touch the input source"
    );
    assert_eq!(cache2.warm_starts(), 1);

    // Byte-identical planning output.
    assert_eq!(
        activepy::plan_fingerprint(&cold),
        activepy::plan_fingerprint(&warm),
        "warm plan fingerprint diverged from cold"
    );
    assert_eq!(
        format!("{:?}", cold.assignment),
        format!("{:?}", warm.assignment)
    );
    assert_eq!(cold.copy_elim, warm.copy_elim);
    assert_eq!(
        format!("{:?}", cold.predictions),
        format!("{:?}", warm.predictions)
    );

    // And identical execution.
    let out_cold = rt1
        .execute_plan(&cold, &config, ContentionScenario::none())
        .expect("cold run");
    let out_warm = rt2
        .execute_plan(&warm, &config, ContentionScenario::none())
        .expect("warm run");
    assert_eq!(
        out_cold.report.values_fingerprint,
        out_warm.report.values_fingerprint
    );
    std::fs::remove_file(&path).ok();
}

/// Kill/resume chaos over a wire-format workload: the journaled decode
/// pipeline (scan_raw → decode on the CSD, under a retry-forcing fault
/// plan) resumes from cuts across the whole journal to the exact
/// uninterrupted fingerprint, and the resumed journal file is
/// byte-for-byte the uninterrupted record stream — decode chunks replay,
/// they do not re-execute differently.
#[test]
fn decode_workload_resumes_byte_exact() {
    let w = isp_workloads::by_name("LogGrep").expect("registered workload");
    let program = w.program().expect("parses");
    let st = w.storage_at(1.0 / 1024.0);
    // The workload's planned regime: the whole pipeline on the CSD.
    let placements = vec![EngineKind::Cse; program.len()];
    let faults = FaultPlan::none()
        .with_seed(23)
        .with_flash_read_error_prob(0.25)
        .with_nvme_error_prob(0.2)
        .with_dma_error_prob(0.15);
    let config = SystemConfig::paper_default();

    for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
        let path = wal_path("decode");
        let journal = ExecJournal::record_to(&path).expect("create journal");
        let opts = ExecOptions::activepy()
            .with_backend(backend)
            .with_faults(faults.clone())
            .with_journal(journal);
        let mut system = config.build();
        let full = execute(&program, &st, &placements, &mut system, &opts, None, &[])
            .expect("uninterrupted run");
        assert!(
            full.metrics.recovery.retries > 0,
            "fault plan must force retries through the decode pipeline"
        );
        let full_journal = std::fs::read(&path).expect("journal exists");

        for frac in [0.1, 0.5, 0.9] {
            std::fs::write(&path, &full_journal).expect("restore journal");
            truncate_at_fraction(&path, frac);
            let (journal, _) = ExecJournal::resume_from(&path).expect("resume");
            let opts = ExecOptions::activepy()
                .with_backend(backend)
                .with_faults(faults.clone())
                .with_journal(journal);
            let mut system = config.build();
            let resumed = execute(&program, &st, &placements, &mut system, &opts, None, &[])
                .expect("resumed run");
            assert_eq!(
                full.values_fingerprint, resumed.values_fingerprint,
                "resume at {frac} changed the decode answer on {backend:?}"
            );
            assert_eq!(
                full.metrics.recovery.retries, resumed.metrics.recovery.retries,
                "retry accounting diverged at {frac} on {backend:?}"
            );
            let resumed_journal = std::fs::read(&path).expect("journal exists");
            assert_eq!(
                full_journal, resumed_journal,
                "resumed journal bytes diverged at {frac} on {backend:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
