//! Property-based tests over the core data structures and invariants.

use activepy::assign::{assign, assign_greedy, assign_optimal};
use activepy::estimate::LineEstimate;
use activepy::fit::{fit_series, Complexity};
use alang::value::{ArrayVal, BoolArrayVal};
use csd_sim::availability::AvailabilityTrace;
use csd_sim::units::{Bandwidth, Bytes, Duration, SimTime};
use proptest::prelude::*;

proptest! {
    /// invert is the exact inverse of integrate for any piecewise trace.
    #[test]
    fn availability_invert_integrate_round_trip(
        changes in prop::collection::vec((0.0f64..100.0, 0.01f64..1.0), 0..6),
        start in 0.0f64..50.0,
        effective in 0.0f64..200.0,
    ) {
        let mut tr = AvailabilityTrace::full();
        let mut sorted = changes;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for (at, frac) in sorted {
            tr = tr.with_change(SimTime::from_secs(at), frac);
        }
        let wall = tr.invert(SimTime::from_secs(start), effective);
        let back = tr.integrate(SimTime::from_secs(start), wall);
        prop_assert!((back - effective).abs() < 1e-6, "{back} vs {effective}");
    }

    /// Transfer time scales linearly with bytes at fixed bandwidth.
    #[test]
    fn bandwidth_transfer_is_linear(bytes in 1u64..1_000_000_000, gbps in 0.5f64..20.0) {
        let bw = Bandwidth::from_gb_per_sec(gbps);
        let one = bw.transfer_time(Bytes::new(bytes)).as_secs();
        let two = bw.transfer_time(Bytes::new(bytes * 2)).as_secs();
        prop_assert!((two - 2.0 * one).abs() < 1e-9);
    }

    /// Duration subtraction saturates; addition is associative enough.
    #[test]
    fn duration_arithmetic(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (da, db) = (Duration::from_secs(a), Duration::from_secs(b));
        prop_assert!((da - db).as_secs() >= 0.0);
        let sum = (da + db).as_secs();
        prop_assert!((sum - (a + b)).abs() < 1e-6);
    }

    /// The fitter recovers the generating curve from noiseless samples at
    /// the paper's four scales (expressed as absolute sizes so the log
    /// term varies).
    #[test]
    fn fit_recovers_generating_curve(
        coeff in 0.1f64..1e6,
        which in 0usize..4,
    ) {
        // O(n log n) at sub-unity scales degenerates to O(n); use absolute
        // sizes 2^10..2^13 like a real input-size axis.
        let curves = [Complexity::O1, Complexity::ON, Complexity::ON2, Complexity::ON3];
        let target = curves[which];
        let points: Vec<(f64, f64)> = [1024.0, 2048.0, 4096.0, 8192.0]
            .iter()
            .map(|&n| (n, coeff * target.g(n)))
            .collect();
        let fit = fit_series(&points).expect("fit");
        prop_assert_eq!(fit.complexity, target);
        prop_assert!((fit.coefficient - coeff).abs() / coeff < 1e-6);
    }

    /// Every assignment variant satisfies T_csd <= T_host (none may
    /// project a plan worse than staying home).
    #[test]
    fn assignments_never_project_worse_than_host(
        lines in prop::collection::vec(
            (1e-3f64..2.0, 1e-3f64..4.0, 0u64..8_000_000_000, 0u64..8_000_000_000),
            1..12,
        ),
    ) {
        let estimates: Vec<LineEstimate> = lines
            .iter()
            .enumerate()
            .map(|(i, (h, d, din, dout))| LineEstimate {
                line: i,
                ct_host: *h,
                ct_device: *d,
                d_in: *din,
                d_out: *dout,
                ops: 0,
            })
            .collect();
        const BW: f64 = 4e9;
        for a in [assign_greedy(&estimates, BW), assign(&estimates, BW), assign_optimal(&estimates, BW)] {
            prop_assert!(a.t_csd <= a.t_host + 1e-9, "{a:?}");
            prop_assert!(a.csd_lines.iter().all(|l| *l < estimates.len()));
        }
    }

    /// Array logical scaling preserves data and the invariant
    /// `logical >= materialized`.
    #[test]
    fn array_logical_invariants(data in prop::collection::vec(-1e9f64..1e9, 1..64), mult in 1u64..1000) {
        let logical = data.len() as u64 * mult;
        let arr = ArrayVal::with_logical(data.clone(), logical);
        prop_assert_eq!(arr.data(), &data[..]);
        prop_assert!(arr.logical_len() >= arr.len() as u64);
        prop_assert!((arr.scale_ratio() - mult as f64).abs() < 1e-9);
    }

    /// Mask selectivity is always in [0, 1] and matches the popcount.
    #[test]
    fn mask_selectivity_bounds(bits in prop::collection::vec(any::<bool>(), 1..256)) {
        let mask = BoolArrayVal::new(bits.clone());
        let sel = mask.selectivity();
        prop_assert!((0.0..=1.0).contains(&sel));
        let expected = bits.iter().filter(|b| **b).count() as f64 / bits.len() as f64;
        prop_assert!((sel - expected).abs() < 1e-12);
    }
}

/// Strategy over ALang expression trees whose `Display` form is valid
/// source (non-negative literals; identifiers that avoid the keywords).
fn arb_expr() -> impl Strategy<Value = alang::ast::Expr> {
    use alang::ast::{BinOp, Expr, UnOp};
    let ident = "[a-z][a-z0-9_]{0,6}".prop_filter("keywords are not identifiers", |s| {
        !matches!(s.as_str(), "and" | "or" | "not")
    });
    let leaf = prop_oneof![
        (0.0..1e6f64).prop_map(Expr::Num),
        "[a-z ]{0,8}".prop_map(Expr::Str),
        ident.clone().prop_map(Expr::Ident),
    ];
    leaf.prop_recursive(3, 24, 3, move |inner| {
        let op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::And),
            Just(BinOp::Or),
        ];
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone()).prop_map(|(op, e)| {
                Expr::Unary {
                    op,
                    expr: Box::new(e),
                }
            }),
            ("[a-z][a-z0-9_]{0,6}", prop::collection::vec(inner, 0..3)).prop_filter_map(
                "keywords are not function names",
                |(name, args)| {
                    (!matches!(name.as_str(), "and" | "or" | "not"))
                        .then_some(Expr::Call { name, args })
                },
            ),
        ]
    })
}

proptest! {
    /// `Display` output of any expression re-parses to the identical tree:
    /// the printer and the parser agree on the grammar.
    #[test]
    fn parser_display_round_trip(expr in arb_expr()) {
        let source = format!("x = {expr}\n");
        let program = alang::parser::parse(&source)
            .map_err(|e| TestCaseError::fail(format!("{e} in `{source}`")))?;
        prop_assert_eq!(&program.lines()[0].expr, &expr, "source: {}", source);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Filtering a table scales its logical rows by the measured
    /// selectivity and never loses columns.
    #[test]
    fn table_filter_scales_logical_rows(
        keep in prop::collection::vec(any::<bool>(), 8..64),
        mult in 1u64..500,
    ) {
        use alang::table::{Column, Table};
        use std::sync::Arc;
        let n = keep.len();
        let col: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Table::with_logical_rows(
            vec![("x".into(), Column::F64(Arc::new(col)))],
            n as u64 * mult,
        ).expect("table");
        let f = t.filter(&keep).expect("filter");
        let kept = keep.iter().filter(|k| **k).count();
        prop_assert_eq!(f.rows(), kept);
        prop_assert_eq!(f.column_count(), 1);
        let expected_logical = (t.logical_rows() as f64 * kept as f64 / n as f64).round() as u64;
        prop_assert_eq!(f.logical_rows(), expected_logical.max(kept as u64));
    }
}
