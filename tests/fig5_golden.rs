//! The fig. 5 grid is a published output: its rows feed
//! `BENCH_repro.json` and the paper-facing tables, so the observability
//! layer must leave them byte-for-byte alone.
//!
//! 1. The untraced grid serializes byte-identically to the committed
//!    golden (`tests/golden/fig5_rows.json`; regenerate with
//!    `REGEN_FIG5_GOLDEN=1 cargo test --test fig5_golden` after an
//!    intentional model change).
//! 2. The traced serial grid (`fig5::run_traced`, what `repro --trace`
//!    runs) produces exactly the same rows as the untraced parallel
//!    grid — tracing is observation-only at the benchmark level too.

use activepy::PlanCache;
use alang::ParallelPolicy;
use csd_sim::SystemConfig;
use isp_bench::experiments::fig5;
use isp_obs::Tracer;

fn rendered(rows: &[fig5::Row]) -> String {
    serde_json::to_string(rows).expect("rows serialize")
}

#[test]
fn untraced_rows_match_the_committed_golden() {
    let rows = fig5::run(&SystemConfig::paper_default());
    let out = rendered(&rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig5_rows.json");
    if std::env::var_os("REGEN_FIG5_GOLDEN").is_some() {
        std::fs::write(path, &out).expect("golden is writable");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        out, golden,
        "fig5 rows drifted from tests/golden/fig5_rows.json; \
         regenerate with REGEN_FIG5_GOLDEN=1 if intentional"
    );
}

#[test]
fn traced_grid_rows_equal_the_untraced_grid() {
    let config = SystemConfig::paper_default();
    let untraced = fig5::run(&config);
    let (tracer, sink) = Tracer::to_memory();
    let traced = fig5::run_traced(
        &config,
        &PlanCache::new(),
        ParallelPolicy::default(),
        &tracer,
        None,
    );
    assert_eq!(
        rendered(&traced),
        rendered(&untraced),
        "enabling the tracer moved a fig5 row"
    );
    assert!(!sink.events().is_empty(), "the traced grid journaled spans");
}
