//! Decode differential: random wire formats × random placements × pinned
//! fault plans × both evaluation backends × every fleet size. One decode
//! pipeline, one answer.
//!
//! The program is fixed — a scan_raw→decode→filter→aggregate pipeline
//! over two encoded datasets — and everything around it is drawn:
//! each dataset's codec / shuffle / byte order / fill sentinel, the
//! per-line host-or-CSD placement, the per-device fault stream, the
//! evaluation backend, and the shard count. Every combination must
//! produce the clean unsharded reference's `values_fingerprint`: wire
//! decoding is bit-exact everywhere or it is not a storage format.

use activepy::exec::{execute, ExecOptions};
use activepy::execute_sharded_raw;
use alang::builtins::Storage;
use alang::parser::parse;
use alang::shard::{ShardMap, ShardStrategy};
use alang::value::EncodedVal;
use alang::{ExecBackend, Value};
use csd_sim::fault::FaultPlan;
use csd_sim::units::SimTime;
use csd_sim::wire::{ByteOrder, Codec, Encoding};
use csd_sim::{EngineKind, SystemConfig};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The pipeline under test: decode both streams, grep, aggregate. Nine
/// lines so placement draws cover host/CSD boundaries inside the decode
/// prefix, between the decodes, and at the reduction tail.
const SOURCE: &str = "\
ra = scan_raw('a')
a = decode(ra)
rb = scan_raw('b')
b = decode(rb)
x = a * 2 + b
m = x > 40
sel = select(x, m)
s = sum(sel)
c = count(m)
";

/// Deterministic patterned payload (compressible, sentinel-bearing).
fn payload(salt: u64, sentinel: Option<f64>) -> Vec<f64> {
    (0..256)
        .map(|i: u64| {
            let h = i.wrapping_mul(97).wrapping_add(salt);
            if h.is_multiple_of(11) {
                sentinel.unwrap_or(0.0)
            } else {
                ((h % 50) as f64) - 4.0
            }
        })
        .collect()
}

fn arb_encoding() -> impl Strategy<Value = Encoding> {
    (
        prop_oneof![Just(Codec::None), Just(Codec::Gzip), Just(Codec::Zlib)],
        any::<bool>(),
        prop_oneof![Just(ByteOrder::Little), Just(ByteOrder::Big)],
        prop_oneof![Just(None), Just(Some(-1.0f64)), Just(Some(f64::NAN))],
    )
        .prop_map(|(codec, shuffle, byte_order, fill_value)| Encoding {
            codec,
            shuffle,
            byte_order,
            fill_value,
        })
}

/// Storage with both streams under the drawn wire formats. Logical rows
/// stay at the materialized length: encoded values replicate rather than
/// shard, so the differential exercises the replication path at every N.
fn storage(enc_a: Encoding, enc_b: Encoding) -> Storage {
    let mut st = Storage::new();
    let a = payload(3, enc_a.fill_value);
    let b = payload(11, enc_b.fill_value);
    st.insert(
        "a",
        Value::Encoded(EncodedVal::from_f64s(enc_a, &a, a.len() as u64)),
    );
    st.insert(
        "b",
        Value::Encoded(EncodedVal::from_f64s(enc_b, &b, b.len() as u64)),
    );
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_wire_format_produces_one_fingerprint(
        enc_a in arb_encoding(),
        enc_b in arb_encoding(),
        on_csd in prop::collection::vec(any::<bool>(), 9..10),
        faults in (
            0u64..1_000,
            0.0f64..0.2,
            0.0f64..0.2,
            prop_oneof![Just(None), (0.0f64..0.05).prop_map(Some)],
        ),
        shard_strategy in prop_oneof![
            Just(ShardStrategy::Range),
            (0u64..1_000).prop_map(ShardStrategy::Hash),
        ],
    ) {
        let (seed, flash, nvme, crash) = faults;
        let program = parse(SOURCE).expect("pipeline parses");
        let placements: Vec<EngineKind> = on_csd
            .iter()
            .map(|&c| if c { EngineKind::Cse } else { EngineKind::Host })
            .collect();
        let st = storage(enc_a, enc_b);
        let config = SystemConfig::paper_default();

        // The clean unsharded all-host reference: placement, faults,
        // backend, and sharding must never move a bit of the answer.
        let reference = {
            let mut system = config.build();
            let host = vec![EngineKind::Host; program.len()];
            execute(
                &program, &st, &host, &mut system,
                &ExecOptions::activepy(), None, &[],
            )
            .expect("reference run")
            .values_fingerprint
        };

        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            let opts = ExecOptions::activepy().with_backend(backend);

            let mut system = config.build();
            let placed = execute(
                &program, &st, &placements, &mut system, &opts, None, &[],
            ).expect("placed run");
            prop_assert_eq!(
                placed.values_fingerprint, reference,
                "placement moved the answer on {:?}\na: {:?}\nb: {:?}",
                backend, enc_a, enc_b
            );

            for &n in &SHARD_COUNTS {
                let map = ShardMap::auto(&st, n, shard_strategy);
                let faults: Vec<FaultPlan> = (0..n)
                    .map(|s| {
                        let mut plan = FaultPlan::none()
                            .with_seed(seed.wrapping_mul(31).wrapping_add(s as u64))
                            .with_flash_read_error_prob(flash)
                            .with_nvme_error_prob(nvme);
                        if let Some(at) = crash {
                            plan = plan.with_crash_at(SimTime::from_secs(at));
                        }
                        plan
                    })
                    .collect();
                let faulted = execute_sharded_raw(
                    &program, &st, &map, &placements, &config, &opts, &faults, n,
                ).expect("sharded faulted run");
                prop_assert_eq!(
                    faulted.values_fingerprint, reference,
                    "N={} faulted fleet diverged on {:?}\na: {:?}\nb: {:?}",
                    n, backend, enc_a, enc_b
                );
                prop_assert_eq!(
                    faulted.recovered_transients(),
                    faulted.injected.transient_total(),
                    "recovery accounting missed faults"
                );
            }
        }
    }
}
