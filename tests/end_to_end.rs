//! Cross-crate integration: the full ActivePy pipeline against the
//! baselines, over real workloads.

use activepy::runtime::ActivePy;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::{best_static_plan, run_c_baseline, run_plan};

#[test]
fn activepy_tracks_the_programmer_directed_optimum() {
    let config = SystemConfig::paper_default();
    for name in ["TPC-H-6", "PageRank", "LightGBM"] {
        let w = isp_workloads::by_name(name).expect("registered");
        let baseline = run_c_baseline(&w, &config).expect("baseline").total_secs;
        let plan = best_static_plan(&w, &config).expect("plan");
        let pd = run_plan(&w, &config, &plan, ContentionScenario::none())
            .expect("pd")
            .total_secs;
        let program = w.program().expect("parse");
        let outcome = ActivePy::new()
            .run(&program, &w, &config, ContentionScenario::none())
            .expect("pipeline");
        let ap = outcome.report.total_secs;
        assert!(
            ap < baseline,
            "{name}: ActivePy {ap} must beat the baseline {baseline}"
        );
        assert!(
            ap < pd * 1.12,
            "{name}: ActivePy {ap} strays from the hand-optimized {pd}"
        );
    }
}

#[test]
fn every_workload_survives_the_full_pipeline() {
    let config = SystemConfig::paper_default();
    for w in isp_workloads::with_sparsemv() {
        let program = w.program().expect("parse");
        let outcome = ActivePy::new()
            .run(&program, &w, &config, ContentionScenario::none())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert!(outcome.report.total_secs > 0.0);
        assert_eq!(outcome.estimates.len(), program.len());
        assert_eq!(outcome.predictions.len(), program.len());
        assert!(
            !outcome.assignment.csd_lines.is_empty(),
            "{}: the evaluated applications all benefit from the CSD",
            w.name()
        );
        assert!(
            outcome.report.migration.is_none(),
            "{}: quiet CSD, no migration",
            w.name()
        );
    }
}

#[test]
fn pipeline_overheads_stay_small() {
    let config = SystemConfig::paper_default();
    for w in isp_workloads::table1() {
        let program = w.program().expect("parse");
        let outcome = ActivePy::new()
            .run(&program, &w, &config, ContentionScenario::none())
            .expect("pipeline");
        let overhead = outcome.sampling_secs + outcome.compile_secs;
        assert!(
            overhead < 0.08 * outcome.report.total_secs,
            "{}: overhead {overhead}s on a {}s run",
            w.name(),
            outcome.report.total_secs
        );
    }
}

#[test]
fn calibration_constant_is_sane() {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let program = w.program().expect("parse");
    let outcome = ActivePy::new()
        .run(&program, &w, &config, ContentionScenario::none())
        .expect("pipeline");
    // The CSE is slower than the host, but within a small factor.
    assert!(
        outcome.calibration.cse_slowdown > 1.0 && outcome.calibration.cse_slowdown < 4.0,
        "C = {}",
        outcome.calibration.cse_slowdown
    );
}
