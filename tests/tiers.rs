//! Tier semantics: the four code tiers (interpreted, Cython-compiled,
//! copy-eliminated, native) change *cost*, never *values* — and placement
//! (host vs CSD) never changes a program's result either.

use activepy::exec::{execute, execute_all_host, ExecOptions};
use alang::{CostParams, ExecTier, Interpreter};
use csd_sim::{ContentionScenario, EngineKind, SystemConfig};

#[test]
fn tiers_change_latency_never_results() {
    for w in isp_workloads::table1() {
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.05);
        // Reference values from a plain interpreted run.
        let mut reference = Interpreter::new(&storage);
        reference.run(&program, &[]).expect("reference run");
        let final_var = &program.lines().last().expect("non-empty").target;
        let want = reference.var(final_var).expect("final value").clone();
        // The compiled tiers execute the same semantics.
        for tier in [
            ExecTier::Compiled,
            ExecTier::CompiledCopyElim,
            ExecTier::Native,
        ] {
            let compiled = alang::CompiledProgram::compile(
                program.clone(),
                tier,
                &alang::copyelim::DatasetTypes::new(),
            );
            compiled.run(&storage).expect("compiled run");
            // `CompiledProgram::run` re-executes through the interpreter, so
            // replay the values explicitly for the comparison.
            let mut interp = Interpreter::new(&storage);
            interp
                .run(&program, compiled.copy_elim())
                .expect("tier run");
            assert_eq!(
                interp.var(final_var).expect("value"),
                &want,
                "{}: tier {tier} changed the result",
                w.name()
            );
        }
    }
}

#[test]
fn placement_never_changes_results_only_time() {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let program = w.program().expect("parse");
    let storage = w.storage_at(1.0);

    let mut host_sys = config.build();
    let host = execute_all_host(
        &program,
        &storage,
        &mut host_sys,
        ExecTier::Native,
        &CostParams::paper_default(),
        &[],
    )
    .expect("host run");

    let mut isp_sys = config.build();
    let placements = vec![EngineKind::Cse; program.len()];
    let isp = execute(
        &program,
        &storage,
        &placements,
        &mut isp_sys,
        &ExecOptions::native_static().with_scenario(ContentionScenario::none()),
        None,
        &[],
    )
    .expect("isp run");

    // Same measured per-line data volumes, different wall clock.
    for (h, d) in host.lines.iter().zip(&isp.lines) {
        assert_eq!(
            h.cost.bytes_out, d.cost.bytes_out,
            "line {} volume differs",
            h.line
        );
        assert_eq!(h.cost.compute_ops, d.cost.compute_ops);
    }
    assert_ne!(host.total_secs, isp.total_secs);
}

#[test]
fn copy_elim_never_slows_a_workload() {
    let config = SystemConfig::paper_default();
    for w in isp_workloads::table1() {
        let plain = isp_baselines::run_host_only(&w, &config, ExecTier::Compiled)
            .expect("compiled")
            .total_secs;
        let elim = isp_baselines::run_host_only(&w, &config, ExecTier::CompiledCopyElim)
            .expect("copy-elim")
            .total_secs;
        assert!(
            elim <= plain + 1e-9,
            "{}: copy elimination slowed the run ({elim} vs {plain})",
            w.name()
        );
    }
}
