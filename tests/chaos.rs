//! Chaos differential: random programs × random placements × random
//! deterministic fault plans, on both evaluation backends. The invariants
//! the recovering runtime must hold, for every draw:
//!
//! 1. **No unhandled faults** — with host fallback on (the default), a
//!    faulted run succeeds exactly when its fault-free twin does.
//! 2. **No wrong answers** — the values fingerprint of the faulted run is
//!    byte-identical to the fault-free one, on both backends.
//! 3. **Every hard fault is absorbed** — a crash or retry exhaustion
//!    always surfaces as a `MigrationReason::DeviceFault` host fallback,
//!    never as an error or a silent divergence.
//! 4. **Accounting agrees** — the transient faults the recovery layer
//!    reports equal the transient errors the injector actually injected.

use activepy::exec::{execute, ExecOptions, MigrationReason, RunReport};
use activepy::ActivePyError;
use alang::builtins::Storage;
use alang::parser::parse;
use alang::value::ArrayVal;
use alang::{ExecBackend, Value};
use csd_sim::fault::FaultPlan;
use csd_sim::units::{Duration, SimTime};
use csd_sim::{EngineKind, FaultCounters, SystemConfig};
use proptest::prelude::*;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Builtins safe to call with one argument of any generated type (same
/// set as the engine differential; `sort` panics on legitimate NaNs).
const FNS: [&str; 5] = ["sum", "mean", "sqrt", "abs", "len"];

const OPS: [&str; 8] = ["+", "-", "*", "/", "<", ">", "==", "!="];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep.
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner, 0usize..FNS.len()).prop_map(|(e, f)| format!("{}({e})", FNS[f])),
        ]
    })
}

fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..64).map(|i| f64::from(i % 10)).collect(),
            1_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..32).map(|i| f64::from(i) - 16.0).collect(),
            500_000,
        )),
    );
    st
}

/// A random but valid fault plan: independent transient error rates per
/// device surface, an optional GC burst, an optional hard crash.
#[allow(clippy::type_complexity)]
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000,
        0.0f64..0.3,
        0.0f64..0.3,
        0.0f64..0.3,
        (any::<bool>(), 0.0f64..0.05),
        (any::<bool>(), 0.0f64..0.05, 0.0f64..0.05, 0.05f64..1.0),
    )
        .prop_map(|(seed, flash, nvme, dma, crash, gc)| {
            let mut plan = FaultPlan::none()
                .with_seed(seed)
                .with_flash_read_error_prob(flash)
                .with_nvme_error_prob(nvme)
                .with_dma_error_prob(dma);
            if crash.0 {
                plan = plan.with_crash_at(SimTime::from_secs(crash.1));
            }
            if gc.0 {
                plan =
                    plan.with_gc_burst(SimTime::from_secs(gc.1), Duration::from_secs(gc.2), gc.3);
            }
            plan
        })
}

/// One execution on a fresh system; returns the report (or error) plus
/// what the injector actually injected.
fn run_once(
    src: &str,
    placements: &[EngineKind],
    backend: ExecBackend,
    faults: &FaultPlan,
) -> (Result<RunReport, ActivePyError>, FaultCounters) {
    let program = parse(src).expect("generated source parses");
    let st = storage();
    let mut system = SystemConfig::paper_default().build();
    let opts = ExecOptions::activepy()
        .with_backend(backend)
        .with_faults(faults.clone());
    let res = execute(&program, &st, placements, &mut system, &opts, None, &[]);
    (res, system.fault_counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn faulted_runs_recover_to_the_fault_free_answer(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..6),
        on_csd in prop::collection::vec(any::<bool>(), 6..7),
        faults in fault_plan(),
    ) {
        let src: String = lines
            .iter()
            .map(|(t, e)| format!("{} = {e}\n", VARS[*t]))
            .collect();
        let placements: Vec<EngineKind> = (0..lines.len())
            .map(|i| if on_csd[i] { EngineKind::Cse } else { EngineKind::Host })
            .collect();
        let clean_plan = FaultPlan::none();

        let mut fingerprints = Vec::new();
        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            let (clean, _) = run_once(&src, &placements, backend, &clean_plan);
            let (faulted, injected) = run_once(&src, &placements, backend, &faults);
            match (clean, faulted) {
                (Ok(clean), Ok(faulted)) => {
                    // Invariant 2: byte-identical answers.
                    prop_assert_eq!(
                        clean.values_fingerprint, faulted.values_fingerprint,
                        "faults changed the answer for:\n{}", src
                    );
                    fingerprints.push(clean.values_fingerprint);
                    fingerprints.push(faulted.values_fingerprint);
                    // Invariant 3: hard faults always resolve into a
                    // device-fault migration, never an unhandled error.
                    if faulted.metrics.recovery.hard_faults > 0 {
                        let mig = faulted.migration.expect("hard fault must migrate");
                        prop_assert_eq!(mig.reason, MigrationReason::DeviceFault);
                        prop_assert!(faulted.metrics.recovery.fault_migrations >= 1);
                    }
                    // Invariant 4: recovery accounting matches injection.
                    prop_assert_eq!(
                        faulted.metrics.recovery.transient_faults,
                        injected.transient_total(),
                        "recovery layer missed injected faults for:\n{}", src
                    );
                    // A crash latches: once observed, nothing further runs
                    // on the CSE, so at most one crash is ever counted.
                    prop_assert!(injected.cse_crashes <= 1);
                }
                (Err(_), Err(_)) => {
                    // Invalid programs (reads of undefined names) fail
                    // with or without faults; nothing further to check.
                }
                (clean, faulted) => {
                    // Invariant 1 violated.
                    return Err(TestCaseError::fail(format!(
                        "fault injection changed success for:\n{src}\n\
                         clean: {clean:?}\nfaulted: {faulted:?}"
                    )));
                }
            }
        }
        // Both backends, faulted and clean, agree on the one answer.
        prop_assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "backends diverged for:\n{}\n{:?}", src, fingerprints
        );
    }
}
