//! Differential testing of the two ALang engines: random programs and
//! random copy-elimination flags must behave identically on the
//! tree-walking reference interpreter and the lowered register-bytecode VM
//! — same [`alang::Value`]s, same `LineCost` stream (including copy-elim
//! tagging), same errors at the same lines.

use alang::builtins::Storage;
use alang::interp::Interpreter;
use alang::parser::parse;
use alang::value::ArrayVal;
use alang::{Value, Vm};
use proptest::prelude::*;

/// Assignment targets; reads of not-yet-defined names are valid programs
/// that must fail identically on both engines.
const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Builtins safe to call with one argument of any generated type: either
/// they succeed or both engines raise the same runtime error. `sort` is
/// excluded because its contract panics on the NaNs that `sqrt`/`0/0`
/// legitimately produce here.
const FNS: [&str; 5] = ["sum", "mean", "sqrt", "abs", "len"];

const OPS: [&str; 8] = ["+", "-", "*", "/", "<", ">", "==", "!="];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep.
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner, 0usize..FNS.len()).prop_map(|(e, f)| format!("{}({e})", FNS[f])),
        ]
    })
}

fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..64).map(|i| f64::from(i % 10)).collect(),
            1_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..32).map(|i| f64::from(i) - 16.0).collect(),
            500_000,
        )),
    );
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_programs_agree_across_engines(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..6),
        flags in prop::collection::vec(any::<bool>(), 0..8),
    ) {
        let src: String = lines
            .iter()
            .map(|(t, e)| format!("{} = {e}\n", VARS[*t]))
            .collect();
        let program = parse(&src).expect("generated source parses");
        let st = storage();
        let mut interp = Interpreter::new(&st);
        let ast = interp.run(&program, &flags);
        // Every generated call targets a registered builtin, so lowering
        // cannot fail (unknown functions are a lower-time error).
        let lowered = alang::lower::lower_with(&program, &flags).expect("lowers");
        let mut vm = Vm::new(&lowered, &st);
        let vm_res = vm.run();
        match (ast, vm_res) {
            (Ok(a), Ok(v)) => {
                // Identical LineCost streams, including copy-elim tagging.
                prop_assert_eq!(a, v, "records diverged for:\n{}", src);
                for name in interp.var_names() {
                    // Debug-compare so identical NaNs (0/0, sqrt of a
                    // negative) don't read as inequality.
                    prop_assert_eq!(
                        format!("{:?}", interp.var(name)),
                        format!("{:?}", vm.var(name)),
                        "variable `{}` diverged for:\n{}", name, src
                    );
                    prop_assert_eq!(interp.var_bytes(name), vm.var_bytes(name));
                }
            }
            (Err(a), Err(v)) => {
                prop_assert_eq!(a, v, "errors diverged for:\n{}", src);
            }
            (a, v) => {
                return Err(TestCaseError::fail(format!(
                    "engines diverged for:\n{src}\nast: {a:?}\nvm:  {v:?}"
                )));
            }
        }
    }
}
