//! The lowering pass must be invisible in every result: the register
//! bytecode VM and the tree-walking reference interpreter have to produce
//! byte-identical experiment rows, not merely close ones. These tests run
//! repro-grade grids on both backends and compare serialized output.

use alang::ExecBackend;
use csd_sim::{ContentionScenario, SystemConfig};

#[test]
fn fig5_rows_are_byte_identical_across_backends() {
    let config = SystemConfig::paper_default();
    let vm = isp_bench::experiments::fig5::run_serial_with_backend(&config, ExecBackend::Vm);
    let ast = isp_bench::experiments::fig5::run_serial_with_backend(&config, ExecBackend::AstWalk);
    assert_eq!(
        serde_json::to_string(&vm).expect("rows serialize"),
        serde_json::to_string(&ast).expect("rows serialize"),
        "the VM must not change a single byte of the Figure 5 grid"
    );
}

#[test]
fn every_workload_pipeline_is_identical_across_backends() {
    use activepy::runtime::{ActivePy, ActivePyOptions};
    let config = SystemConfig::paper_default();
    for w in isp_workloads::table1() {
        let program = w.program().expect("parse");
        let vm = ActivePy::with_options(ActivePyOptions::default().with_backend(ExecBackend::Vm))
            .run(&program, &w, &config, ContentionScenario::none())
            .expect("vm pipeline");
        let ast =
            ActivePy::with_options(ActivePyOptions::default().with_backend(ExecBackend::AstWalk))
                .run(&program, &w, &config, ContentionScenario::none())
                .expect("ast pipeline");
        assert_eq!(
            serde_json::to_string(&vm.report).expect("report serializes"),
            serde_json::to_string(&ast.report).expect("report serializes"),
            "{}: execution reports diverged",
            w.name()
        );
        assert_eq!(vm.assignment, ast.assignment, "{}", w.name());
        assert_eq!(vm.estimates, ast.estimates, "{}", w.name());
        assert_eq!(vm.sampling, ast.sampling, "{}", w.name());
    }
}
