//! Audit-layer invariants: calibration is observation-only, and the
//! Prometheus exposition it feeds is byte-deterministic.
//!
//! 1. **Observation-only (property-tested)** — for random programs ×
//!    random placements × fleet sizes N ∈ {1, 4} × pinned fault plans,
//!    on both evaluation backends: running with a live tracer (the audit
//!    substrate) leaves `values_fingerprint`, the injected-fault ledger,
//!    every per-shard metrics snapshot, and every migration decision
//!    byte-identical to the unaudited run.
//! 2. **Full-pipeline audit is observation-only** — the planned path
//!    (plan → execute → `calibrate` → `publish_to`) reproduces the
//!    unaudited fingerprint and run report for a real workload, and the
//!    Prometheus rendering of the audited registry is byte-deterministic
//!    and structurally valid.
//! 3. **Golden exposition** — the Prometheus text rendered from the
//!    committed fig5 TPC-H-6 journal's metrics footer is byte-identical
//!    to `tests/golden/fig5_tpch6_metrics.prom`; regenerate with
//!    `REGEN_TRACE_GOLDEN=1 cargo test --test audit_determinism`.

use activepy::exec::{execute, ExecOptions};
use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::{execute_sharded_raw, PlanCache};
use alang::builtins::Storage;
use alang::parser::parse;
use alang::shard::{ShardMap, ShardStrategy};
use alang::value::ArrayVal;
use alang::{ExecBackend, Value};
use csd_sim::fault::FaultPlan;
use csd_sim::units::{Duration, SimTime};
use csd_sim::{ContentionScenario, EngineKind, SystemConfig};
use isp_obs::export::prometheus;
use isp_obs::{footer_snapshot, parse_journal, Tracer};
use proptest::prelude::*;

const FLEET_SIZES: [usize; 2] = [1, 4];

const VARS: [&str; 4] = ["a", "b", "c", "d"];

const FNS: [&str; 5] = ["sum", "mean", "sqrt", "abs", "len"];

const OPS: [&str; 8] = ["+", "-", "*", "/", "<", ">", "==", "!="];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep (the
/// shard differential's grammar).
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner, 0usize..FNS.len()).prop_map(|(e, f)| format!("{}({e})", FNS[f])),
        ]
    })
}

/// Both stored arrays clear `SHARD_MIN_ROWS`, so the auto map always
/// partitions them.
fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..64).map(|i| f64::from(i % 10)).collect(),
            1_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..32).map(|i| f64::from(i) - 16.0).collect(),
            500_000,
        )),
    );
    st
}

/// Raw fault-plan parameters, materialized per shard from a shard-salted
/// seed (same shape as the shard differential).
#[derive(Debug, Clone)]
struct FaultParams {
    seed: u64,
    flash: f64,
    nvme: f64,
    dma: f64,
    crash: Option<f64>,
    gc: Option<(f64, f64, f64)>,
}

impl FaultParams {
    fn plan_for_shard(&self, s: usize) -> FaultPlan {
        let mut plan = FaultPlan::none()
            .with_seed(self.seed.wrapping_mul(31).wrapping_add(s as u64))
            .with_flash_read_error_prob(self.flash)
            .with_nvme_error_prob(self.nvme)
            .with_dma_error_prob(self.dma);
        if let Some(at) = self.crash {
            plan = plan.with_crash_at(SimTime::from_secs(at));
        }
        if let Some((at, dur, frac)) = self.gc {
            plan = plan.with_gc_burst(SimTime::from_secs(at), Duration::from_secs(dur), frac);
        }
        plan
    }
}

fn fault_params() -> impl Strategy<Value = FaultParams> {
    (
        0u64..1_000,
        0.0f64..0.2,
        0.0f64..0.2,
        0.0f64..0.2,
        (any::<bool>(), 0.0f64..0.05),
        (any::<bool>(), 0.0f64..0.05, 0.0f64..0.05, 0.05f64..1.0),
    )
        .prop_map(|(seed, flash, nvme, dma, crash, gc)| FaultParams {
            seed,
            flash,
            nvme,
            dma,
            crash: crash.0.then_some(crash.1),
            gc: gc.0.then_some((gc.1, gc.2, gc.3)),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Enabling the audit substrate (a live tracer) perturbs nothing the
    /// run computes: fingerprints, fault accounting, per-shard metrics,
    /// and migration decisions all match the unaudited run, on both
    /// backends, at every fleet size, faulted or clean.
    #[test]
    fn audit_is_observation_only_across_fleets_and_faults(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..6),
        on_csd in prop::collection::vec(any::<bool>(), 6..7),
        params in fault_params(),
    ) {
        let src: String = lines
            .iter()
            .map(|(t, e)| format!("{} = {e}\n", VARS[*t]))
            .collect();
        let program = parse(&src).expect("generated source parses");
        let placements: Vec<EngineKind> = (0..lines.len())
            .map(|i| if on_csd[i] { EngineKind::Cse } else { EngineKind::Host })
            .collect();
        let st = storage();
        let config = SystemConfig::paper_default();

        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            let plain_opts = ExecOptions::activepy().with_backend(backend);
            let (tracer, _sink) = Tracer::to_memory();
            let audited_opts = plain_opts.clone().with_tracer(tracer.clone());

            // Unsharded single device, clean.
            let mut system = config.build();
            let plain = execute(&program, &st, &placements, &mut system, &plain_opts, None, &[]);
            let mut system = config.build();
            let audited =
                execute(&program, &st, &placements, &mut system, &audited_opts, None, &[]);
            match (&plain, &audited) {
                (Ok(p), Ok(a)) => {
                    prop_assert_eq!(
                        a.values_fingerprint, p.values_fingerprint,
                        "tracing moved the unsharded fingerprint for:\n{}", src
                    );
                    prop_assert_eq!(a.metrics, p.metrics);
                    prop_assert_eq!(
                        format!("{:?}", a.migration),
                        format!("{:?}", p.migration)
                    );
                }
                (Err(_), Err(_)) => {}
                _ => {
                    return Err(TestCaseError::fail(format!(
                        "tracing changed unsharded success for:\n{src}"
                    )));
                }
            }

            // Fleets with per-shard fault plans.
            for &n in &FLEET_SIZES {
                let map = ShardMap::auto(&st, n, ShardStrategy::Range);
                let faults: Vec<FaultPlan> =
                    (0..n).map(|s| params.plan_for_shard(s)).collect();
                let plain = execute_sharded_raw(
                    &program, &st, &map, &placements, &config, &plain_opts, &faults, n,
                );
                let audited = execute_sharded_raw(
                    &program, &st, &map, &placements, &config, &audited_opts, &faults, n,
                );
                match (plain, audited) {
                    (Ok(p), Ok(a)) => {
                        prop_assert_eq!(
                            a.values_fingerprint, p.values_fingerprint,
                            "tracing moved the N={} fingerprint for:\n{}", n, src
                        );
                        prop_assert_eq!(
                            format!("{:?}", a.injected),
                            format!("{:?}", p.injected),
                            "tracing moved the injected-fault ledger for:\n{}", src
                        );
                        prop_assert_eq!(a.shards.len(), p.shards.len());
                        for (sa, sp) in a.shards.iter().zip(&p.shards) {
                            prop_assert_eq!(
                                sa.report.values_fingerprint,
                                sp.report.values_fingerprint
                            );
                            prop_assert_eq!(sa.report.metrics, sp.report.metrics);
                            prop_assert_eq!(
                                format!("{:?}", &sa.report.migration),
                                format!("{:?}", &sp.report.migration),
                                "tracing moved a shard migration for:\n{}", src
                            );
                        }
                    }
                    (Err(_), Err(_)) => {}
                    _ => {
                        return Err(TestCaseError::fail(format!(
                            "tracing changed success at N={n} for:\n{src}"
                        )));
                    }
                }
            }

            // The audited registry renders to identical Prometheus bytes
            // every time, and the exposition is structurally valid.
            if let Some(snap) = tracer.metrics_snapshot() {
                let once = prometheus::render(&snap);
                let twice = prometheus::render(&snap);
                prop_assert_eq!(&once, &twice, "Prometheus rendering is not a pure function");
                prometheus::validate(&once).map_err(TestCaseError::fail)?;
            }
        }
    }
}

/// The planned path: plan once, execute unaudited for the reference
/// fingerprint, then re-execute with the full audit harness (live
/// tracer + profile recorder + `calibrate` + `publish_to` + metrics
/// fold + Prometheus render). Nothing the run computes may move.
#[test]
fn planned_audit_pass_is_observation_only() {
    let w = isp_workloads::by_name("TPC-H-6").expect("registered workload");
    let program = w.program().expect("workload parses");
    let config = SystemConfig::paper_default();
    let cache = PlanCache::new();
    let rt = ActivePy::new();
    let plan = cache
        .plan_for(&rt, w.name(), &program, &w, &config)
        .expect("planning succeeds");

    let reference = rt
        .execute_plan(&plan, &config, ContentionScenario::none())
        .expect("reference run");

    let (tracer, sink) = Tracer::to_memory();
    let audited_rt = ActivePy::with_options(
        ActivePyOptions::default()
            .with_tracer(tracer.clone())
            .with_profile(cache.recorder_for(&rt, w.name(), &w, &config)),
    );
    let audited = audited_rt
        .execute_plan(&plan, &config, ContentionScenario::none())
        .expect("audited run");
    let calibration = activepy::calibrate(w.name(), &plan, &audited.report, None);
    calibration.publish_to(&tracer);

    // Observation-only: fingerprint, line costs, metrics, migration.
    assert_eq!(
        audited.report.values_fingerprint,
        reference.report.values_fingerprint
    );
    assert_eq!(audited.report.metrics, reference.report.metrics);
    assert_eq!(
        format!("{:?}", audited.report.migration),
        format!("{:?}", reference.report.migration)
    );

    // The calibration joined every executed line and folded into the
    // snapshot's audit family.
    assert!(!calibration.lines.is_empty());
    let snap = audited.report.metrics.with_audit(&calibration);
    assert_eq!(snap.audit.lines_audited, calibration.lines.len() as u64);

    // The published registry renders deterministically, validates, and
    // carries the audit families.
    let registry = tracer.metrics_snapshot().expect("live tracer");
    let text = prometheus::render(&registry);
    assert_eq!(text, prometheus::render(&registry));
    prometheus::validate(&text).expect("valid exposition");
    assert!(
        text.contains("isp_audit_lines"),
        "missing audit counter:\n{text}"
    );
    assert!(
        text.contains("isp_audit_time_err_ppm_bucket"),
        "missing audit histogram:\n{text}"
    );

    // The journal footer round-trips the same registry, so `trace
    // --prom` on a written journal reproduces the live exposition.
    let journal = parse_journal(&isp_obs::export::jsonl(
        &sink.events(),
        tracer.metrics_snapshot().as_ref(),
        true,
    ))
    .expect("journal parses");
    let from_footer = footer_snapshot(&journal).expect("journal has a metrics footer");
    assert_eq!(prometheus::render(&from_footer), text);
}

/// The committed Prometheus golden: rendering the metrics footer of the
/// committed fig5 TPC-H-6 journal must reproduce
/// `tests/golden/fig5_tpch6_metrics.prom` byte for byte.
#[test]
fn prometheus_export_matches_the_committed_golden() {
    let journal_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig5_tpch6_trace.jsonl"
    );
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig5_tpch6_metrics.prom"
    );
    let journal_text = std::fs::read_to_string(journal_path).expect("trace golden exists");
    let journal = parse_journal(&journal_text).expect("trace golden parses");
    let snap = footer_snapshot(&journal).expect("trace golden has a metrics footer");
    let rendered = prometheus::render(&snap);
    prometheus::validate(&rendered).expect("valid exposition");
    if std::env::var_os("REGEN_TRACE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("golden is writable");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("Prometheus golden exists");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/fig5_tpch6_metrics.prom; \
         regenerate with REGEN_TRACE_GOLDEN=1 if intentional"
    );
}
