//! Thread-count determinism: the data-parallel kernel engine must be
//! invisible in every output. Random programs run at 1, 2, and 8 worker
//! threads on both evaluation backends and must produce byte-identical
//! values, identical `LineCost` streams, and identical values
//! fingerprints — the chunk grid depends only on data shape and reduction
//! partials combine in chunk-index order, so the schedule can never leak
//! into a result. A pinned fault plan on top must not change that.

use activepy::exec::{execute, ExecOptions};
use alang::builtins::Storage;
use alang::interp::Interpreter;
use alang::parser::parse;
use alang::value::ArrayVal;
use alang::{ExecBackend, ParallelPolicy, Value, Vm};
use csd_sim::fault::FaultPlan;
use csd_sim::units::{Duration, SimTime};
use csd_sim::{EngineKind, SystemConfig};
use proptest::prelude::*;

/// Assignment targets, as in the engine differential.
const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Builtins safe to call with one argument of any generated type (`sort`
/// panics on the NaNs that `sqrt`/`0/0` legitimately produce here).
const FNS: [&str; 5] = ["sum", "mean", "sqrt", "abs", "len"];

const OPS: [&str; 8] = ["+", "-", "*", "/", "<", ">", "==", "!="];

/// Low engagement threshold so the stored arrays below split into several
/// chunks (the element budget is 4096/chunk) and parallel execution
/// genuinely happens instead of falling back to the serial fast path.
const MIN_PARALLEL_LEN: usize = 1_000;

const THREADS: [usize; 3] = [1, 2, 8];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep.
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner, 0usize..FNS.len()).prop_map(|(e, f)| format!("{}({e})", FNS[f])),
        ]
    })
}

/// Like the engine differential's storage but with physical arrays large
/// enough to split into multiple chunks (12 000 elements ≈ 3 chunks).
fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..12_000).map(|i| f64::from(i % 10)).collect(),
            1_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..8_200).map(|i| f64::from(i % 97) - 48.0).collect(),
            500_000,
        )),
    );
    st
}

fn policy(threads: usize) -> ParallelPolicy {
    ParallelPolicy::new(threads, MIN_PARALLEL_LEN).expect("valid policy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn results_are_identical_at_every_thread_count(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..6),
        flags in prop::collection::vec(any::<bool>(), 0..8),
    ) {
        let src: String = lines
            .iter()
            .map(|(t, e)| format!("{} = {e}\n", VARS[*t]))
            .collect();
        let program = parse(&src).expect("generated source parses");
        let lowered = alang::lower::lower_with(&program, &flags).expect("lowers");
        let st = storage();

        // (records, per-var debug+bytes) per (backend, thread count); all
        // cells must be equal.
        let mut reference: Option<(String, String)> = None;
        for threads in THREADS {
            let mut interp = Interpreter::with_policy(&st, policy(threads));
            let ast = interp.run(&program, &flags);
            let mut vm = Vm::with_policy(&lowered, &st, policy(threads));
            let vm_res = vm.run();
            let cell = match (ast, vm_res) {
                (Ok(a), Ok(v)) => {
                    prop_assert_eq!(&a, &v, "engines diverged at {} threads for:\n{}", threads, src);
                    let vars: String = interp
                        .var_names()
                        .map(|name| {
                            // Debug-format so identical NaNs compare equal.
                            format!(
                                "{name}={:?}|{:?};{:?}|{:?}\n",
                                interp.var(name),
                                interp.var_bytes(name),
                                vm.var(name),
                                vm.var_bytes(name)
                            )
                        })
                        .collect();
                    (format!("{a:?}"), vars)
                }
                (Err(a), Err(v)) => {
                    prop_assert_eq!(&a, &v, "errors diverged at {} threads for:\n{}", threads, src);
                    (format!("err:{a:?}"), String::new())
                }
                (a, v) => {
                    return Err(TestCaseError::fail(format!(
                        "engines diverged at {threads} threads for:\n{src}\nast: {a:?}\nvm:  {v:?}"
                    )));
                }
            };
            match &reference {
                None => reference = Some(cell),
                Some(first) => {
                    prop_assert_eq!(
                        first, &cell,
                        "thread count {} changed the outcome for:\n{}", threads, src
                    );
                }
            }
        }
    }
}

/// A fixed mixed-placement program whose kernels all chunk under the test
/// policy, replayed fault-free and under a pinned fault plan at every
/// thread count on both backends: one `values_fingerprint`, one `LineCost`
/// stream, regardless of schedule or injected faults.
#[test]
fn pinned_faults_and_parallel_kernels_replay_bit_exactly() {
    let src = "a = scan('v')\n\
               b = sqrt(abs(a))\n\
               c = dot(b, b)\n\
               d = (a * 2.5) - 3\n\
               a = sum(d) / (c + 1)\n\
               b = mean(b) + a\n";
    let program = parse(src).expect("fixed source parses");
    let placements = [
        EngineKind::Cse,
        EngineKind::Cse,
        EngineKind::Host,
        EngineKind::Cse,
        EngineKind::Host,
        EngineKind::Cse,
    ];
    let pinned = FaultPlan::none()
        .with_seed(7)
        .with_flash_read_error_prob(0.15)
        .with_nvme_error_prob(0.1)
        .with_dma_error_prob(0.1)
        .with_gc_burst(SimTime::from_secs(0.01), Duration::from_secs(0.02), 0.5);

    // Fingerprints must agree across *everything*; LineCost streams only
    // within a fault plan (injected retries legitimately shift the
    // simulated per-line timings), where thread count and backend still
    // must not move them.
    let mut fingerprints = Vec::new();
    for faults in [FaultPlan::none(), pinned] {
        let mut cells = Vec::new();
        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            for threads in THREADS {
                let st = storage();
                let mut system = SystemConfig::paper_default().build();
                let opts = ExecOptions::activepy()
                    .with_backend(backend)
                    .with_faults(faults.clone())
                    .with_parallelism(policy(threads));
                let report = execute(&program, &st, &placements, &mut system, &opts, None, &[])
                    .expect("fixed program runs");
                assert_eq!(
                    report.parallel,
                    policy(threads),
                    "policy lands in the report"
                );
                if threads > 1 {
                    assert!(
                        report.metrics.par.par_calls > 0,
                        "chunked execution must engage at {threads} threads"
                    );
                }
                // Whole reports differ across cells (policy and chunk
                // counters are recorded); the *answer* may not.
                fingerprints.push(report.values_fingerprint);
                cells.push((
                    format!("{:?}", report.lines),
                    format!("{backend:?}/{threads}"),
                ));
            }
        }
        let (first_lines, first_tag) = cells[0].clone();
        for (lines, tag) in &cells[1..] {
            assert_eq!(
                *lines, first_lines,
                "LineCost diverged: {first_tag} vs {tag}"
            );
        }
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "fault injection or threading changed the answer: {fingerprints:?}"
    );
}
