//! Trace-layer invariants across the full pipeline:
//!
//! 1. **Byte-determinism** — two same-seed traced runs produce
//!    byte-identical journals once wall-clock fields are masked, on both
//!    export backends (JSONL and Chrome `trace_event`).
//! 2. **Observation-only** — enabling tracing perturbs nothing: the
//!    outcome of a traced run equals the untraced run's, field for field,
//!    including `values_fingerprint` and every metrics counter.
//! 3. **Coverage** — a traced contended pipeline records spans for all
//!    six phases (sampling, fit, profit, assign, compile, execute) and a
//!    `migration.decision` instant carrying a `reason` attribute.
//! 4. **Well-formedness** (property-tested on both evaluation backends) —
//!    every span's duration is non-negative on both clocks, children
//!    complete before their parents, and a child's simulated interval
//!    nests inside its parent's.
//! 5. **Golden Chrome export** — the masked Chrome trace of a pinned run
//!    is byte-identical to the committed golden file
//!    (`tests/golden/trace_chrome.json`); regenerate with
//!    `REGEN_TRACE_GOLDEN=1 cargo test --test trace_determinism`.

use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::sampling::InputSource;
use alang::builtins::Storage;
use alang::parser::parse;
use alang::value::ArrayVal;
use alang::{ExecBackend, Value};
use csd_sim::{ContentionScenario, SystemConfig};
use isp_obs::{export, parse_journal, MemorySink, Tracer};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The runtime facade's reference workload: a filter-reduce over an 8 GB
/// logical array whose materialized length keeps selectivity exactly 0.5
/// at every sampling scale.
fn input() -> impl InputSource {
    |scale: f64| {
        let logical = (scale * 1e9).round().max(100.0) as u64;
        let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
        let data: Vec<f64> = (0..actual).map(|i| (i % 100) as f64).collect();
        let mut st = Storage::new();
        st.insert("v", Value::Array(ArrayVal::with_logical(data, logical)));
        st
    }
}

const SRC: &str = "\
a = scan('v')
m = a < 50
b = select(a, m)
s = sum(b)
";

/// Runs the full pipeline under heavy mid-run contention (which forces a
/// migration) with a fresh memory tracer; returns the sink and outcome.
fn traced_run(backend: ExecBackend) -> (Arc<MemorySink>, activepy::runtime::ActivePyOutcome) {
    let (tracer, sink) = Tracer::to_memory();
    let program = parse(SRC).expect("parse");
    let config = SystemConfig::paper_default();
    let outcome = ActivePy::with_options(
        ActivePyOptions::default()
            .with_backend(backend)
            .with_tracer(tracer.clone()),
    )
    .run(
        &program,
        &input(),
        &config,
        ContentionScenario::after_progress(0.5, 0.1),
    )
    .expect("traced pipeline");
    (sink, outcome)
}

#[test]
fn masked_journals_are_byte_identical_across_same_seed_runs() {
    let (a, _) = traced_run(ExecBackend::Vm);
    let (b, _) = traced_run(ExecBackend::Vm);
    let jsonl_a = export::jsonl(&a.events(), None, true);
    let jsonl_b = export::jsonl(&b.events(), None, true);
    assert_eq!(jsonl_a, jsonl_b, "masked JSONL journals diverged");
    let chrome_a = export::chrome_trace(&a.events(), None, true);
    let chrome_b = export::chrome_trace(&b.events(), None, true);
    assert_eq!(chrome_a, chrome_b, "masked Chrome traces diverged");
    // Unmasked journals carry real wall timestamps, so the masking is
    // doing actual work: the spans exist and are non-empty.
    assert!(!a.events().is_empty());
}

#[test]
fn tracing_is_observation_only() {
    let (_, traced) = traced_run(ExecBackend::Vm);
    let program = parse(SRC).expect("parse");
    let config = SystemConfig::paper_default();
    let untraced = ActivePy::new()
        .run(
            &program,
            &input(),
            &config,
            ContentionScenario::after_progress(0.5, 0.1),
        )
        .expect("untraced pipeline");
    // Full-outcome equality: report (fingerprint, line costs, metrics),
    // assignment, estimates, predictions, sampling — nothing may move.
    assert_eq!(traced, untraced);
}

#[test]
fn traced_pipeline_covers_all_phases_and_the_migration() {
    let (sink, outcome) = traced_run(ExecBackend::Vm);
    assert!(
        outcome.report.migration.is_some(),
        "the 10% contention scenario must force a migration"
    );
    let journal =
        parse_journal(&export::jsonl(&sink.events(), None, true)).expect("journal parses");
    let span_names: Vec<&str> = journal.spans.iter().map(|s| s.name.as_str()).collect();
    for phase in [
        "phase.sampling",
        "phase.fit",
        "phase.profit",
        "phase.assign",
        "phase.compile",
        "phase.execute",
        "sampling.scale",
        "exec.region",
        "exec.chunk",
    ] {
        assert!(
            span_names.contains(&phase),
            "missing span {phase} in {span_names:?}"
        );
    }
    let migration = journal
        .instants
        .iter()
        .find(|i| i.name == "migration.decision")
        .expect("migration.decision instant");
    let reason = migration
        .attrs
        .iter()
        .find(|(k, _)| k == "reason")
        .and_then(|(_, v)| v.as_str().map(str::to_string))
        .expect("reason attribute");
    assert_eq!(reason, "degraded");
    assert!(
        journal.instants.iter().any(|i| i.name == "monitor.window"),
        "monitor windows must be journaled"
    );
    assert!(
        journal
            .instants
            .iter()
            .any(|i| i.name == "assign.candidate"),
        "assignment rounds must be journaled"
    );
}

#[test]
fn chrome_export_matches_the_committed_golden() {
    let (sink, _) = traced_run(ExecBackend::Vm);
    let rendered = export::chrome_trace(&sink.events(), None, true);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_chrome.json"
    );
    if std::env::var_os("REGEN_TRACE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("golden is writable");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "Chrome export drifted from tests/golden/trace_chrome.json; \
         regenerate with REGEN_TRACE_GOLDEN=1 if intentional"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Spans are well-formed on both evaluation backends and under
    /// varying contention: non-negative durations on both clocks,
    /// children complete before their parents, and simulated intervals
    /// nest.
    #[test]
    fn spans_are_well_formed_on_both_backends(
        backend in prop_oneof![Just(ExecBackend::Vm), Just(ExecBackend::AstWalk)],
        fraction in prop_oneof![Just(0.1f64), Just(0.5f64), Just(1.0f64)],
    ) {
        let (tracer, sink) = Tracer::to_memory();
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let scenario = if fraction >= 1.0 {
            ContentionScenario::none()
        } else {
            ContentionScenario::after_progress(0.5, fraction)
        };
        ActivePy::with_options(
            ActivePyOptions::default()
                .with_backend(backend)
                .with_tracer(tracer.clone()),
        )
        .run(&program, &input(), &config, scenario)
        .expect("pipeline");
        let journal = parse_journal(&export::jsonl(&sink.events(), None, false))
            .expect("journal parses");
        prop_assert!(!journal.spans.is_empty());
        let by_id: BTreeMap<u64, &isp_obs::journal::JournalSpan> =
            journal.spans.iter().map(|s| (s.id, s)).collect();
        for s in &journal.spans {
            if let Some(d) = s.sim_dur_secs {
                prop_assert!(d >= 0.0, "span {} negative sim duration {d}", s.name);
            }
            let Some(parent) = by_id.get(&s.parent) else { continue };
            prop_assert!(
                s.seq < parent.seq,
                "child {} (seq {}) must complete before parent {} (seq {})",
                s.name, s.seq, parent.name, parent.seq
            );
            if let (Some(cs), Some(cd), Some(ps), Some(pd)) =
                (s.sim_secs, s.sim_dur_secs, parent.sim_secs, parent.sim_dur_secs)
            {
                prop_assert!(
                    cs >= ps - 1e-9 && cs + cd <= ps + pd + 1e-9,
                    "child {} [{cs}, {}] escapes parent {} [{ps}, {}]",
                    s.name, cs + cd, parent.name, ps + pd
                );
            }
        }
        for i in &journal.instants {
            if let Some(parent) = by_id.get(&i.parent) {
                prop_assert!(i.seq < parent.seq);
            }
        }
    }
}
