//! The whole stack — generators, sampling, simulation — is deterministic:
//! identical runs produce identical reports, which is what makes every
//! experiment in the paper reproducible bit-for-bit here.

use activepy::runtime::ActivePy;
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};

#[test]
fn identical_runs_produce_identical_outcomes() {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-14").expect("registered");
    let program = w.program().expect("parse");
    let a = ActivePy::new()
        .run(&program, &w, &config, ContentionScenario::none())
        .expect("first run");
    let b = ActivePy::new()
        .run(&program, &w, &config, ContentionScenario::none())
        .expect("second run");
    assert_eq!(a.report, b.report);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.estimates, b.estimates);
}

#[test]
fn contended_runs_are_deterministic_too() {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("KMeans").expect("registered");
    let program = w.program().expect("parse");
    let scenario = ContentionScenario::at_time(SimTime::from_secs(0.8), 0.1);
    let a = ActivePy::new()
        .run(&program, &w, &config, scenario)
        .expect("first");
    let b = ActivePy::new()
        .run(&program, &w, &config, scenario)
        .expect("second");
    assert_eq!(a.report.total_secs, b.report.total_secs);
    assert_eq!(a.report.migration, b.report.migration);
}

#[test]
fn cached_fig5_matches_the_uncached_serial_path_byte_for_byte() {
    let config = SystemConfig::paper_default();
    let cached = isp_bench::experiments::fig5::run(&config);
    let serial = isp_bench::experiments::fig5::run_serial(&config);
    assert_eq!(
        serde_json::to_string(&cached).expect("rows serialize"),
        serde_json::to_string(&serial).expect("rows serialize"),
        "plan caching and hoisting must not change a single output byte"
    );
}

#[test]
fn threaded_fig5_rows_match_the_default_policy_byte_for_byte() {
    use activepy::plan::PlanCache;
    use alang::ParallelPolicy;
    use std::time::Instant;

    let config = SystemConfig::paper_default();
    let policy = ParallelPolicy::new(8, 4096).expect("valid policy");
    let t0 = Instant::now();
    let threaded =
        isp_bench::experiments::fig5::run_with_policy(&config, &PlanCache::new(), policy);
    let threaded_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let default = isp_bench::experiments::fig5::run(&config);
    let default_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&threaded).expect("rows serialize"),
        serde_json::to_string(&default).expect("rows serialize"),
        "the kernel parallel policy must not change a single output byte"
    );
    // Wall clock can only be compared where there are cores to use; on a
    // multi-core host the threaded grid must not be drastically slower
    // than the serial one (generous 3x bound — this is an anti-pathology
    // check, not a benchmark; the scaling sweep measures real speedups).
    if isp_bench::experiments::scaling::host_cores() >= 4 {
        assert!(
            threaded_secs <= default_secs * 3.0,
            "threaded fig5 pathologically slow: {threaded_secs}s vs {default_secs}s"
        );
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_a_serial_map() {
    let config = SystemConfig::paper_default();
    let f = |w: isp_workloads::Workload| {
        let program = w.program().expect("parse");
        let outcome = ActivePy::new()
            .run(&program, &w, &config, ContentionScenario::none())
            .expect("run");
        serde_json::to_string(&outcome.report).expect("report serializes")
    };
    let serial: Vec<String> = isp_workloads::table1().into_iter().map(f).collect();
    let parallel = isp_bench::sweep::run_grid_with_threads(isp_workloads::table1(), 4, f);
    assert_eq!(parallel, serial);
}

#[test]
fn generators_are_scale_keyed_but_stable() {
    let w = isp_workloads::by_name("blackscholes").expect("registered");
    let a = w.storage_at(0.25);
    let b = w.storage_at(0.25);
    assert_eq!(
        a.get("options").expect("a").virtual_bytes(),
        b.get("options").expect("b").virtual_bytes()
    );
    let ta = a.get("options").expect("a");
    let tb = b.get("options").expect("b");
    assert_eq!(ta, tb, "same scale, same seed, same data");
}
