//! Re-planning determinism: profile-guided refits and phase-shifting
//! availability traces may steer *where* lines run — host-ward under a
//! burst, device-ward on reclaim, or to a different assignment after a
//! refit — but never *what* they compute. Random programs run under
//! random burst/recovery traces on both evaluation backends through the
//! full feedback loop (cold plan → monitored recording run → refit →
//! re-planned run) and every cell must report the uncontended
//! reference's `values_fingerprint`. The refitted plan must also honor
//! the warm-never-worse contract: under the blended cost model its
//! modelled sim-time never exceeds the cold assignment's.

use activepy::assign::projected_cost;
use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::{InputSource, PlanCache};
use alang::builtins::Storage;
use alang::parser::parse;
use alang::value::ArrayVal;
use alang::{ExecBackend, Value};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use proptest::prelude::*;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Builtins safe on every value the grammar can produce (`sort` panics
/// on NaNs, `len` rejects scalars; both stay out). The reductions only
/// ever wrap expressions the grammar keeps array-shaped.
const MAPS: [&str; 2] = ["sqrt", "abs"];
const REDUCES: [&str; 2] = ["sum", "mean"];

/// Arithmetic only: comparison masks feeding back into arithmetic or
/// `sqrt`/`abs` error out in sampling, which would skip the case — the
/// planning loop, not the type checker, is under test here.
const OPS: [&str; 4] = ["+", "-", "*", "/"];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep.
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner.clone(), 0usize..MAPS.len()).prop_map(|(e, f)| format!("{}({e})", MAPS[f])),
            (inner, 0usize..REDUCES.len())
                .prop_map(|(e, f)| format!("{}((scan('v') + {e}))", REDUCES[f])),
        ]
    })
}

/// Scale-aware input for the sampling phase, as in the plan-cache tests:
/// logical sizes follow the requested scale, physical arrays stay small.
fn input() -> impl InputSource {
    |scale: f64| {
        let logical = (scale * 1e9).round().max(100.0) as u64;
        let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
        let mut st = Storage::new();
        st.insert(
            "v",
            Value::Array(ArrayVal::with_logical(
                (0..actual).map(|i| (i % 100) as f64).collect(),
                logical,
            )),
        );
        st.insert(
            "w",
            Value::Array(ArrayVal::with_logical(
                (0..actual).map(|i| (i % 97) as f64 - 48.0).collect(),
                logical / 2,
            )),
        );
        st
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replanning_never_changes_values_and_warm_is_never_worse(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..5),
        drop_frac in 0.05f64..0.6,
        recover_span in 0.1f64..0.9,
        burst in 0.02f64..0.3,
    ) {
        // The prelude defines every identifier the grammar can reference
        // (use-before-definition is a sampling error, not an interesting
        // case) and guarantees real device-resident inputs in every plan.
        let prelude = "a = scan('v')\nb = scan('w')\nc = (a * 2) - 1\nd = mean(b)\n";
        let src: String = std::iter::once(prelude.to_owned())
            .chain(
                lines
                    .iter()
                    .map(|(t, e)| format!("{} = {e}\n", VARS[*t])),
            )
            .collect();
        let program = parse(&src).expect("generated source parses");
        let config = SystemConfig::paper_default();

        // Fingerprints from every cell of every backend; all equal.
        let mut fingerprints: Vec<(String, u64)> = Vec::new();
        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            let cache = PlanCache::new();
            let static_rt = ActivePy::with_options(
                ActivePyOptions::default()
                    .without_migration()
                    .with_backend(backend),
            );
            // Programs whose sampling runs fail (e.g. sqrt of a boolean
            // mask comparison chain that errors) can't be planned; both
            // backends fail identically, so skipping here discards the
            // whole case.
            let Ok(cold) = cache.plan_for(&static_rt, "prop", &program, &input(), &config)
            else {
                return Ok(());
            };
            let clean = static_rt
                .execute_plan(&cold, &config, ContentionScenario::none())
                .expect("planned programs run");
            // Burst and recovery land at random points of the clean run.
            let total = clean.report.total_secs;
            let drop_at = drop_frac * total;
            let recover_at = drop_at + recover_span * (total - drop_at).max(1e-6);
            let scenario =
                ContentionScenario::at_time(SimTime::from_secs(drop_at), burst)
                    .with_recovery_at(SimTime::from_secs(recover_at));

            let static_run = static_rt
                .execute_plan(&cold, &config, scenario)
                .expect("static run");
            let monitored_rt = ActivePy::with_options(
                ActivePyOptions::default()
                    .with_backend(backend)
                    .with_profile(cache.recorder_for(&static_rt, "prop", &input(), &config)),
            );
            let monitored = monitored_rt
                .execute_plan(&cold, &config, scenario)
                .expect("monitored run");

            // The recorded profile is newer than the cached plan, so this
            // lookup refits.
            let replan_rt =
                ActivePy::with_options(ActivePyOptions::default().with_backend(backend));
            let warm = cache
                .plan_for(&replan_rt, "prop", &program, &input(), &config)
                .expect("refit succeeds");
            prop_assert_eq!(
                cache.stats().refits, 1,
                "one recorded run must trigger exactly one refit for:\n{}", src
            );
            let replanned = replan_rt
                .execute_plan(&warm, &config, scenario)
                .expect("re-planned run");

            // Warm-never-worse, under the model both plans now share: the
            // refit evaluated the cold assignment as a candidate, so its
            // pick can't project slower than the cold placements do.
            let bw = config.d2h_bandwidth().as_bytes_per_sec();
            let prior_placements = cold.assignment.placements(program.len());
            let prior_cost = projected_cost(&program, &warm.estimates, &prior_placements, bw);
            prop_assert!(
                warm.assignment.t_csd <= prior_cost + 1e-9,
                "refit regressed the modelled sim-time: warm {} vs cold-under-warm-model {} for:\n{}",
                warm.assignment.t_csd, prior_cost, src
            );

            for (cell, outcome) in [
                ("clean", &clean),
                ("static", &static_run),
                ("monitored", &monitored),
                ("replanned", &replanned),
            ] {
                fingerprints.push((
                    format!("{backend:?}/{cell}"),
                    outcome.report.values_fingerprint,
                ));
            }
        }
        let (first_tag, first_fp) = fingerprints[0].clone();
        for (tag, fp) in &fingerprints[1..] {
            prop_assert_eq!(
                *fp, first_fp,
                "placement policy leaked into values ({} vs {}) for:\n{}",
                first_tag, tag, src
            );
        }
    }
}
