//! Shard differential: random programs × random placements × every fleet
//! size × pinned per-shard fault plans, on both evaluation backends. The
//! invariants the scatter-gather fleet must hold, for every draw:
//!
//! 1. **One answer** — every fleet size N ∈ {1, 2, 4, 8}, sharded by
//!    range or hash, faulted or clean, on either backend, produces the
//!    same `values_fingerprint` as the unsharded single-device run.
//! 2. **Consistent failure** — a program that errors unsharded (reads of
//!    undefined names) errors at every fleet size too.
//! 3. **Accounting sums** — the transient faults the per-shard recovery
//!    layers absorbed, summed across the fleet, equal the transient
//!    errors the per-device injectors actually delivered.
//! 4. **Crashes latch per device** — each device counts at most one CSE
//!    crash, shard isolation keeps a crash from spreading, and every
//!    hard-faulted shard still contributes the right slice.

use activepy::exec::{execute, ExecOptions};
use activepy::execute_sharded_raw;
use alang::builtins::Storage;
use alang::parser::parse;
use alang::shard::{ShardMap, ShardStrategy};
use alang::value::ArrayVal;
use alang::{ExecBackend, Value};
use csd_sim::fault::FaultPlan;
use csd_sim::units::{Duration, SimTime};
use csd_sim::{EngineKind, SystemConfig};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Builtins safe to call with one argument of any generated type (same
/// set as the chaos differential).
const FNS: [&str; 5] = ["sum", "mean", "sqrt", "abs", "len"];

const OPS: [&str; 8] = ["+", "-", "*", "/", "<", ">", "==", "!="];

fn ident() -> BoxedStrategy<String> {
    (0usize..VARS.len())
        .prop_map(|i| VARS[i].to_owned())
        .boxed()
}

/// A random expression in source form, up to three levels deep.
fn expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..50).prop_map(|n| n.to_string()),
        (1u32..40).prop_map(|n| format!("{n}.5")),
        ident(),
        Just("scan('v')".to_owned()),
        Just("scan('w')".to_owned()),
    ];
    leaf.boxed().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| format!("-({e})")),
            (inner.clone(), inner.clone(), 0usize..OPS.len())
                .prop_map(|(l, r, op)| format!("({l} {} {r})", OPS[op])),
            (inner, 0usize..FNS.len()).prop_map(|(e, f)| format!("{}({e})", FNS[f])),
        ]
    })
}

/// Both stored arrays clear `SHARD_MIN_ROWS`, so the auto map always
/// partitions them.
fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..64).map(|i| f64::from(i % 10)).collect(),
            1_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..32).map(|i| f64::from(i) - 16.0).collect(),
            500_000,
        )),
    );
    st
}

/// Raw parameters of a fault plan; materialized per shard so each device
/// draws an independent deterministic stream from a shard-salted seed.
#[derive(Debug, Clone)]
struct FaultParams {
    seed: u64,
    flash: f64,
    nvme: f64,
    dma: f64,
    crash: Option<f64>,
    gc: Option<(f64, f64, f64)>,
}

impl FaultParams {
    fn plan_for_shard(&self, s: usize) -> FaultPlan {
        let mut plan = FaultPlan::none()
            .with_seed(self.seed.wrapping_mul(31).wrapping_add(s as u64))
            .with_flash_read_error_prob(self.flash)
            .with_nvme_error_prob(self.nvme)
            .with_dma_error_prob(self.dma);
        if let Some(at) = self.crash {
            plan = plan.with_crash_at(SimTime::from_secs(at));
        }
        if let Some((at, dur, frac)) = self.gc {
            plan = plan.with_gc_burst(SimTime::from_secs(at), Duration::from_secs(dur), frac);
        }
        plan
    }
}

fn fault_params() -> impl Strategy<Value = FaultParams> {
    (
        0u64..1_000,
        0.0f64..0.2,
        0.0f64..0.2,
        0.0f64..0.2,
        (any::<bool>(), 0.0f64..0.05),
        (any::<bool>(), 0.0f64..0.05, 0.0f64..0.05, 0.05f64..1.0),
    )
        .prop_map(|(seed, flash, nvme, dma, crash, gc)| FaultParams {
            seed,
            flash,
            nvme,
            dma,
            crash: crash.0.then_some(crash.1),
            gc: gc.0.then_some((gc.1, gc.2, gc.3)),
        })
}

fn strategy() -> impl Strategy<Value = ShardStrategy> {
    prop_oneof![
        Just(ShardStrategy::Range),
        (0u64..1_000).prop_map(ShardStrategy::Hash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_fleet_size_reproduces_the_unsharded_answer(
        lines in prop::collection::vec((0usize..VARS.len(), expr()), 1..6),
        on_csd in prop::collection::vec(any::<bool>(), 6..7),
        params in fault_params(),
        shard_strategy in strategy(),
    ) {
        let src: String = lines
            .iter()
            .map(|(t, e)| format!("{} = {e}\n", VARS[*t]))
            .collect();
        let program = parse(&src).expect("generated source parses");
        let placements: Vec<EngineKind> = (0..lines.len())
            .map(|i| if on_csd[i] { EngineKind::Cse } else { EngineKind::Host })
            .collect();
        let st = storage();
        let config = SystemConfig::paper_default();

        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            let opts = ExecOptions::activepy().with_backend(backend);

            // The unsharded single-device reference.
            let mut system = config.build();
            let reference = execute(
                &program, &st, &placements, &mut system, &opts, None, &[],
            );

            for &n in &SHARD_COUNTS {
                let map = ShardMap::auto(&st, n, shard_strategy);
                prop_assert_eq!(map.count(), n);
                let faults: Vec<FaultPlan> =
                    (0..n).map(|s| params.plan_for_shard(s)).collect();
                let clean = execute_sharded_raw(
                    &program, &st, &map, &placements, &config, &opts, &[], n,
                );
                let faulted = execute_sharded_raw(
                    &program, &st, &map, &placements, &config, &opts, &faults, n,
                );
                match (&reference, clean, faulted) {
                    (Ok(reference), Ok(clean), Ok(faulted)) => {
                        // Invariant 1: one answer everywhere.
                        prop_assert_eq!(
                            clean.values_fingerprint,
                            reference.values_fingerprint,
                            "clean N={} diverged for:\n{}", n, src
                        );
                        prop_assert_eq!(
                            faulted.values_fingerprint,
                            reference.values_fingerprint,
                            "faulted N={} diverged for:\n{}", n, src
                        );
                        // Invariant 3: fleet-wide recovery accounting
                        // matches what the injectors delivered.
                        prop_assert_eq!(
                            faulted.recovered_transients(),
                            faulted.injected.transient_total(),
                            "recovery accounting missed faults for:\n{}", src
                        );
                        prop_assert_eq!(clean.injected.transient_total(), 0);
                        // Invariant 4: a crash latches per device.
                        prop_assert!(faulted.injected.cse_crashes <= n as u64);
                        for shard in &faulted.shards {
                            if shard.report.metrics.recovery.hard_faults > 0 {
                                prop_assert!(
                                    shard.report.migration.is_some(),
                                    "shard {} absorbed a hard fault without \
                                     migrating for:\n{}", shard.shard, src
                                );
                            }
                        }
                    }
                    (Err(_), Err(_), Err(_)) => {
                        // Invariant 2: invalid programs fail at every
                        // fleet size, faulted or not.
                    }
                    (reference, clean, faulted) => {
                        return Err(TestCaseError::fail(format!(
                            "sharding changed success at N={n} for:\n{src}\n\
                             reference: {reference:?}\nclean: {clean:?}\n\
                             faulted: {faulted:?}"
                        )));
                    }
                }
            }
        }
    }
}
