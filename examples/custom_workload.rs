//! Bring your own workload: define a new application (a fraud-screening
//! pipeline over stored transactions), register its data generator, and
//! let ActivePy place it — the workflow a downstream user of this library
//! follows.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use activepy::runtime::ActivePy;
use alang::table::{Column, Table};
use alang::{Storage, Value};
use csd_sim::{ContentionScenario, SystemConfig};
use isp_workloads::spec::Workload;
use std::sync::Arc;

/// Transactions: amount, merchant risk score, hour-of-day, country code —
/// 32 bytes per row, 4 GB of them.
fn transactions(scale: f64) -> Storage {
    const ROWS: usize = 4096;
    let logical = ((scale * 4e9 / 32.0) as u64).max(ROWS as u64);
    let mut amount = Vec::with_capacity(ROWS);
    let mut risk = Vec::with_capacity(ROWS);
    let mut hour = Vec::with_capacity(ROWS);
    let mut country = Vec::with_capacity(ROWS);
    // A cheap deterministic generator keeps the example dependency-free.
    let mut x: u64 = 0x243F_6A88_85A3_08D3 ^ scale.to_bits();
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..ROWS {
        amount.push((next() % 100_000) as f64 / 100.0);
        risk.push((next() % 1000) as f64 / 1000.0);
        hour.push((next() % 24) as f64);
        country.push((next() % 40) as f64);
    }
    let table = Table::with_logical_rows(
        vec![
            ("amount".into(), Column::F64(Arc::new(amount))),
            ("risk".into(), Column::F64(Arc::new(risk))),
            ("hour".into(), Column::F64(Arc::new(hour))),
            ("country".into(), Column::F64(Arc::new(country))),
        ],
        logical,
    )
    .expect("columns are equal-length");
    let mut st = Storage::new();
    st.insert("txns", Value::Table(table));
    st
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The screening rules, written like any analyst would: no device code.
    let source = "\
t = scan('txns')
r = col(t, 'risk')
m1 = r > 0.8
h = col(t, 'hour')
m2 = h < 6
a = col(t, 'amount')
m3 = a > 500
m = m1 and m2 and m3
hits = filter(t, m)
flagged = col(hits, 'amount')
exposure = sum(flagged)
worst = maxv(flagged)
";
    let workload = Workload::new(
        "fraud-screen",
        4.0,
        "night-time high-risk high-value transaction screening",
        source,
        Arc::new(transactions),
    );

    let config = SystemConfig::paper_default();
    let program = workload.program()?;
    let outcome = ActivePy::new().run(&program, &workload, &config, ContentionScenario::none())?;

    println!(
        "fraud-screen: {} lines, {} offloaded to the CSD",
        program.len(),
        outcome.assignment.csd_lines.len()
    );
    for (pred, line) in outcome.predictions.iter().zip(program.lines()) {
        println!(
            "  line {:>2} [{}] {:<28} fit {} -> {:>12} B out",
            line.index,
            if outcome.assignment.csd_lines.contains(&line.index) {
                "CSD "
            } else {
                "host"
            },
            line.source.chars().take(28).collect::<String>(),
            pred.compute_curve.complexity,
            pred.cost.bytes_out,
        );
    }
    println!(
        "\nend-to-end {:.3}s (projected all-host {:.3}s, projected split {:.3}s)",
        outcome.report.total_secs, outcome.assignment.t_host, outcome.assignment.t_csd
    );
    Ok(())
}
