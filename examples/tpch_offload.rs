//! TPC-H on a computational storage device: the no-CSD C baseline, the
//! hand-optimized programmer-directed plan, and hint-free ActivePy, side
//! by side (the Figure 4 comparison for the three TPC-H queries).
//!
//! ```sh
//! cargo run --release --example tpch_offload
//! ```

use activepy::runtime::ActivePy;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::{best_static_plan, run_c_baseline, run_plan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_default();
    println!(
        "{:<10} {:>10} {:>14} {:>12}  offloaded regions",
        "query", "C-baseline", "programmer-ISP", "ActivePy"
    );
    for name in ["TPC-H-1", "TPC-H-6", "TPC-H-14"] {
        let q = isp_workloads::by_name(name).expect("TPC-H workloads are registered");
        let baseline = run_c_baseline(&q, &config)?.total_secs;

        // The paper's programmer-directed baseline: exhaustive offline
        // search over offload combinations, in C.
        let plan = best_static_plan(&q, &config)?;
        let pd = run_plan(&q, &config, &plan, ContentionScenario::none())?.total_secs;

        // ActivePy: the same unannotated source, no search, no hints.
        let program = q.program()?;
        let outcome = ActivePy::new().run(&program, &q, &config, ContentionScenario::none())?;
        let ap = outcome.report.total_secs;

        println!(
            "{:<10} {:>9.2}s {:>8.2}s {:>4.2}x {:>6.2}s {:>4.2}x  pd={:?} activepy={:?}",
            name,
            baseline,
            pd,
            baseline / pd,
            ap,
            baseline / ap,
            plan.range,
            outcome.assignment.csd_regions(),
        );
    }
    println!("\nActivePy reaches the hand-optimized plan without any programmer involvement.");
    Ok(())
}
