//! Quickstart: hand ActivePy an unannotated program and watch it decide
//! what the computational storage device should run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use activepy::runtime::ActivePy;
use activepy::sampling::InputSource;
use alang::builtins::Storage;
use alang::value::ArrayVal;
use alang::{CostParams, ExecTier, Value};
use csd_sim::{ContentionScenario, SystemConfig};

/// A synthetic 8 GB sensor log: readings in [0, 100).
struct SensorLog;

impl InputSource for SensorLog {
    fn storage_at(&self, scale: f64) -> Storage {
        let logical = ((scale * 1e9) as u64).max(4000);
        let data: Vec<f64> = (0..4000).map(|i| f64::from((i * 37) % 100)).collect();
        let mut st = Storage::new();
        st.insert(
            "readings",
            Value::Array(ArrayVal::with_logical(data, logical)),
        );
        st
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ordinary program: no device annotations, no pragmas, no hints.
    let program = alang::parser::parse(
        "r = scan('readings')\n\
         m = r > 90\n\
         spikes = select(r, m)\n\
         n = count(m)\n\
         avg = mean(spikes)\n",
    )?;

    let config = SystemConfig::paper_default();
    let outcome = ActivePy::new().run(&program, &SensorLog, &config, ContentionScenario::none())?;

    println!("ActivePy decided, per line:");
    for line in program.lines() {
        let place = if outcome.assignment.csd_lines.contains(&line.index) {
            "CSD "
        } else {
            "host"
        };
        let est = &outcome.estimates[line.index];
        println!(
            "  [{place}] {line}   (est host {:.3}s / device {:.3}s)",
            est.ct_host, est.ct_device
        );
    }
    println!(
        "\nsampling {:.3}s + codegen {:.3}s overhead, end-to-end {:.3}s",
        outcome.sampling_secs, outcome.compile_secs, outcome.report.total_secs
    );

    // Compare with running everything on the host in native code.
    let storage = SensorLog.storage_at(1.0);
    let mut host_sys = config.build();
    let host = activepy::exec::execute_all_host(
        &program,
        &storage,
        &mut host_sys,
        ExecTier::Native,
        &CostParams::paper_default(),
        &[],
    )?;
    println!(
        "host-only C baseline {:.3}s  ->  speedup {:.2}x",
        host.total_secs,
        host.total_secs / outcome.report.total_secs
    );
    Ok(())
}
