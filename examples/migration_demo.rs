//! Dynamic task migration in action: a competing tenant grabs 90 % of the
//! CSD halfway through PageRank's offloaded work; ActivePy's monitor
//! notices the throughput collapse, re-estimates, and pulls the remaining
//! stream back to the host (the Figure 5 mechanism).
//!
//! ```sh
//! cargo run --release --example migration_demo
//! ```

use activepy::runtime::{ActivePy, ActivePyOptions};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::run_c_baseline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("PageRank").expect("registered");
    let program = w.program()?;

    let baseline = run_c_baseline(&w, &config)?.total_secs;
    println!("no-CSD baseline:              {baseline:.2}s");

    // Uncontended reference run: find when half the CSD work is done.
    let reference = ActivePy::new().run(&program, &w, &config, ContentionScenario::none())?;
    println!(
        "ActivePy, quiet CSD:          {:.2}s ({:.2}x)",
        reference.report.total_secs,
        baseline / reference.report.total_secs
    );
    let t_half = reference
        .report
        .time_at_csd_progress(0.5)
        .expect("PageRank offloads work");
    println!("half the ISP work is done at  {t_half:.2}s — the tenant arrives then\n");

    // The same run, but a competing tenant takes 90% of the CSD at t_half.
    let scenario = ContentionScenario::at_time(SimTime::from_secs(t_half), 0.1);
    let with_mig = ActivePy::new().run(&program, &w, &config, scenario)?;
    match with_mig.report.migration {
        Some(m) => println!(
            "WITH migration:    {:.2}s ({:.2}x) — broke after line {}, moved {} B of live \
             state, {:.0} ms regenerating host code",
            with_mig.report.total_secs,
            baseline / with_mig.report.total_secs,
            m.after_line,
            m.state_bytes,
            m.regen_secs * 1e3,
        ),
        None => println!(
            "WITH migration:    {:.2}s — the monitor decided staying was cheaper",
            with_mig.report.total_secs
        ),
    }

    let without = ActivePy::with_options(ActivePyOptions::default().without_migration())
        .run(&program, &w, &config, scenario)?;
    println!(
        "WITHOUT migration: {:.2}s ({:.2}x) — the static plan rides the starved device \
         to the end",
        without.report.total_secs,
        baseline / without.report.total_secs
    );
    println!(
        "\nmigration advantage: {:.2}x",
        without.report.total_secs / with_mig.report.total_secs
    );

    // The other §III-D trigger: the device itself needs the CSE for a
    // high-priority request. No contention at all — the Break command in
    // the call queue forces the ISP task out at the next status update.
    let preempting = ActivePy::with_options(ActivePyOptions::default().with_preemption_at(t_half))
        .run(&program, &w, &config, ContentionScenario::none())?;
    match preempting.report.migration {
        Some(m) => println!(
            "\nhigh-priority preemption at {t_half:.2}s: vacated after line {} ({:?}), \
             finished in {:.2}s",
            m.after_line, m.reason, preempting.report.total_secs
        ),
        None => println!("\nhigh-priority preemption did not fire (nothing left to preempt)"),
    }
    Ok(())
}
