//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness matching the subset of criterion 0.5 the
//! repo's benches use: `benchmark_group`, `sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. It runs each bench for
//! the configured warm-up and measurement windows and prints mean
//! iteration time — no statistics engine, plots, or CLI filtering.

use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run without recording until the window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
        }
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;

        // Measurement: at least `sample_size` samples, stretched to fill
        // the measurement window.
        let measure_start = Instant::now();
        let mut samples = 0usize;
        while samples < self.sample_size || measure_start.elapsed() < self.measurement_time {
            f(&mut bencher);
            samples += 1;
        }

        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iters.min(u64::from(u32::MAX))).unwrap_or(1)
        };
        println!(
            "{}/{id}: {mean:?} mean over {} iters ({samples} samples)",
            self.name, bencher.iters
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, accumulating into the group's running mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Opaque value barrier re-exported for parity with criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.finish();
        assert!(calls >= 3);
    }
}
