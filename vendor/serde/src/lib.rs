//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of serde it uses. Instead of real serde's visitor-based
//! serializer architecture, values serialize into a [`Content`] tree —
//! an ordered, JSON-shaped intermediate — which `vendor/serde_json`
//! renders. The derive macros (re-exported from the sibling
//! `serde_derive` crate) target the same two traits.
//!
//! Representation choices mirror real serde's external tagging so output
//! stays familiar: unit enum variants are strings, data-carrying variants
//! are single-entry maps, newtype structs are transparent.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// The serialized form of any value: an ordered JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also non-finite floats, as in serde_json).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// An ordered map (field order is declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items of a sequence, if this is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a map field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can serialize itself into a [`Content`] tree.
pub trait Serialize {
    /// The serialized form.
    fn serialize_content(&self) -> Content;
}

/// A value that can reconstruct itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    ///
    /// Returns an error when `c` does not have the expected shape.
    fn deserialize_content(c: &Content) -> Result<Self, Error>;
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content { Content::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        u64::deserialize_content(c)?
            .try_into()
            .map_err(|_| Error::custom("usize out of range"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content { Content::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        i64::deserialize_content(c)?
            .try_into()
            .map_err(|_| Error::custom("isize out of range"))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        f64::deserialize_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(v) => Ok(*v),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        T::deserialize_content(c).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn serialize_content(&self) -> Content {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Content::Seq(
            items
                .into_iter()
                .map(Serialize::serialize_content)
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

/// Renders a map key as the JSON object-key string. Like serde_json, only
/// string-like and integer keys are representable.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize_content() {
        Content::Str(s) => s,
        Content::U64(n) => n.to_string(),
        Content::I64(n) => n.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other:?}"),
    }
}

/// Recovers a key from its object-key string, trying the key type's
/// string form first and integer forms second (for numeric newtypes).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize_content(&Content::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_content(&Content::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_content(&Content::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::deserialize_content(&Content::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("unparseable map key `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.serialize_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_content(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let items = c.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                Ok(($($t::deserialize_content(
                    items.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            let c = v.serialize_content();
            assert_eq!(u64::deserialize_content(&c).unwrap(), v);
        }
        let c = (-5i64).serialize_content();
        assert_eq!(i64::deserialize_content(&c).unwrap(), -5);
        let c = 1.5f64.serialize_content();
        assert_eq!(f64::deserialize_content(&c).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.0f64), (3, 4.0)];
        let c = v.serialize_content();
        assert_eq!(Vec::<(usize, f64)>::deserialize_content(&c).unwrap(), v);
        let s: BTreeSet<usize> = [3, 1, 2].into_iter().collect();
        let c = s.serialize_content();
        assert_eq!(BTreeSet::<usize>::deserialize_content(&c).unwrap(), s);
        let none: Option<u32> = None;
        assert_eq!(none.serialize_content(), Content::Null);
    }

    #[test]
    fn field_lookup() {
        let c = Content::Map(vec![
            ("a".into(), Content::U64(1)),
            ("b".into(), Content::Bool(true)),
        ]);
        assert_eq!(c.field("b"), Some(&Content::Bool(true)));
        assert_eq!(c.field("z"), None);
    }
}
