//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/combinator surface the repo's property tests
//! use — ranges, regex-subset strings, tuples, `collection::vec`, `Just`,
//! `prop_oneof!`, `prop_map`/`prop_filter`/`prop_filter_map`/
//! `prop_recursive`, and the `proptest!`/`prop_assert!` macros — with
//! deterministic seeded sampling. Unlike real proptest there is no
//! shrinking: a failing case reports its case index and error and panics,
//! which is sufficient because all inputs derive from a fixed seed and
//! failures reproduce exactly.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The RNG handed to strategies during sampling.
pub type TestRng = StdRng;

/// Why a test case failed (no reject/shrink distinction here).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives a strategy through `config.cases` deterministic samples.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        // Fixed seed: property runs are reproducible by design. Real
        // proptest persists failing seeds; here every run is the same run.
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x05EE_DF00_D0DD_5EED),
        }
    }

    /// Samples `strategy` repeatedly and applies `test` to each value.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting its index and error.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.sample(&mut self.rng);
            if let Err(err) = test(value) {
                panic!("proptest case {case}/{} failed: {err}", self.config.cases);
            }
        }
    }
}

/// A generator of values; the sampling half of proptest's Strategy.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds recursive values up to `depth` levels of `recurse` around
    /// this base strategy. `_desired_size` and `_expected_branch_size`
    /// are accepted for signature parity and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            // Bias toward branching so trees actually gain depth; the
            // leaf arm keeps every level reachable.
            strat =
                Union::new_weighted(vec![(1, base.clone()), (2, recurse(strat).boxed())]).boxed();
        }
        strat
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

const FILTER_ATTEMPTS: usize = 10_000;

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_ATTEMPTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {FILTER_ATTEMPTS} attempts: {}",
            self.whence
        );
    }
}

#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {FILTER_ATTEMPTS} attempts: {}",
            self.whence
        );
    }
}

/// Weighted choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(variants.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "Union needs at least one variant");
        let total_weight = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union needs positive total weight");
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.variants {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total weight");
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Regex-subset string strategy: sequences of literal characters and
/// `[...]` classes, each optionally repeated `{m,n}` / `{n}`.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = compile_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn compile_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in pattern `{pattern}`");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in pattern `{pattern}`");
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };

        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let bounds = match body.split_once(',') {
                Some((m, n)) => (
                    m.parse().expect("repetition min"),
                    n.parse().expect("repetition max"),
                ),
                None => {
                    let n = body.parse().expect("repetition count");
                    (n, n)
                }
            };
            i = close + 1;
            bounds
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in pattern `{pattern}`");
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(
                &($($strat,)+),
                |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&("[a-z][a-z0-9_]{0,6}",), |(s,)| {
            prop_assert!(!s.is_empty() && s.len() <= 7, "bad sample {s:?}");
            prop_assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());
            prop_assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(
            xs in prop::collection::vec((0u64..10, 0.0f64..1.0), 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for (n, f) in &xs {
                prop_assert!(*n < 10 && (0.0..1.0).contains(f));
            }
            let _ = flag;
        }

        #[test]
        fn oneof_and_recursive_terminate(
            depth in prop_oneof![Just(1usize), Just(2usize)].prop_recursive(
                2, 8, 2, |inner| inner.prop_map(|d| d + 1),
            ),
        ) {
            prop_assert!((1..=4).contains(&depth), "depth={depth}");
        }
    }
}
