//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the narrow slice of serde it actually uses (see
//! `vendor/serde`). This proc-macro crate derives that vendored crate's
//! `Serialize`/`Deserialize` traits for plain structs and enums — named
//! fields, tuple structs, and unit/newtype/tuple/struct enum variants.
//! Generic types and `#[serde(...)]` attributes are intentionally
//! unsupported: the derive fails loudly rather than guessing.
//!
//! No `syn`/`quote` either (also unavailable offline): the item is parsed
//! directly from the `proc_macro::TokenStream` and the impl is emitted as
//! a source string. That is robust precisely because only the shapes
//! above are admitted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => ser_named_struct(&item.name, fields),
        Shape::TupleStruct(arity) => ser_tuple_struct(&item.name, *arity),
        Shape::UnitStruct => {
            format!("::serde::Content::Str(\"{}\".to_string())", item.name)
        }
        Shape::Enum(variants) => ser_enum(&item.name, variants),
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}",
        name = item.name,
    );
    out.parse().expect("derived Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => de_named_struct(&item.name, fields),
        Shape::TupleStruct(arity) => de_tuple_struct(&item.name, *arity),
        Shape::UnitStruct => format!("Ok({})", item.name),
        Shape::Enum(variants) => de_enum(&item.name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_content(c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}",
        name = item.name,
    );
    out.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            },
            _ => Item {
                name,
                shape: Shape::UnitStruct,
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

/// Advances past outer attributes (`#[...]`, including expanded doc
/// comments) and a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` / `(super)` / ...
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` bodies, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

/// Counts tuple-struct / tuple-variant fields (top-level comma groups).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

/// Consumes a type expression up to (and including) the next top-level
/// comma. Tracks `<`/`>` depth so commas inside generics don't split.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn ser_named_struct(_name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize_content(&self.{f}))"))
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

fn ser_tuple_struct(_name: &str, arity: usize) -> String {
    match arity {
        0 => "::serde::Content::Seq(vec![])".to_string(),
        // Newtypes serialize transparently, as in real serde.
        1 => "::serde::Serialize::serialize_content(&self.0)".to_string(),
        n => {
            let items: Vec<String> = (0..n)
                .map(|k| format!("::serde::Serialize::serialize_content(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
    }
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string())"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                     ::serde::Serialize::serialize_content(__f0))])"
                ),
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::serialize_content(__f{k})"))
                        .collect();
                    format!(
                        "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Content::Seq(vec![{items}]))])",
                        binds = binds.join(", "),
                        items = items.join(", "),
                    )
                }
                VariantKind::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::serialize_content({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Content::Map(vec![{entries}]))])",
                        entries = entries.join(", "),
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(", "))
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn de_named_struct(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_content(\
                     c.field(\"{f}\").ok_or_else(|| ::serde::Error::custom(\
                     \"missing field `{f}` of struct `{name}`\"))?)?"
            )
        })
        .collect();
    format!("Ok({name} {{ {} }})", inits.join(", "))
}

fn de_tuple_struct(name: &str, arity: usize) -> String {
    match arity {
        0 => format!("Ok({name}())"),
        1 => format!("Ok({name}(::serde::Deserialize::deserialize_content(c)?))"),
        n => {
            let items: Vec<String> = (0..n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::deserialize_content(items.get({k})\
                         .ok_or_else(|| ::serde::Error::custom(\
                         \"missing tuple field {k} of `{name}`\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = c.as_seq().ok_or_else(|| ::serde::Error::custom(\
                 \"expected sequence for tuple struct `{name}`\"))?;\n\
                 Ok({name}({items}))",
                items = items.join(", "),
            )
        }
    }
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => return Ok({name}::{vn}(\
                     ::serde::Deserialize::deserialize_content(value)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::deserialize_content(items.get({k})\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"missing field {k} of variant `{vn}`\"))?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{ let items = value.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected sequence for variant `{vn}`\"))?; \
                         return Ok({name}::{vn}({items})); }}",
                        items = items.join(", "),
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize_content(\
                                 value.field(\"{f}\").ok_or_else(|| ::serde::Error::custom(\
                                 \"missing field `{f}` of variant `{vn}`\"))?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),",
                        inits = inits.join(", "),
                    ))
                }
            }
        })
        .collect();
    format!(
        "if let ::serde::Content::Str(tag) = c {{\n\
             match tag.as_str() {{ {unit_arms} _ => {{}} }}\n\
         }}\n\
         if let Some(map) = c.as_map() {{\n\
             if map.len() == 1 {{\n\
                 let (tag, value) = &map[0];\n\
                 let _ = value;\n\
                 match tag.as_str() {{ {data_arms} _ => {{}} }}\n\
             }}\n\
         }}\n\
         Err(::serde::Error::custom(\"no variant of `{name}` matched\"))",
        unit_arms = unit_arms.join(" "),
        data_arms = data_arms.join(" "),
    )
}
