//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free API: `lock()`, `read()`, and `write()` return guards
//! directly instead of `Result`s. A poisoned std lock just means another
//! thread panicked while holding it; like parking_lot, we hand the data
//! back rather than propagating the poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
