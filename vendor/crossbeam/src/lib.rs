//! Offline stand-in for `crossbeam`.
//!
//! Exposes `crossbeam::thread::scope` with crossbeam 0.8's signature
//! (closure receives `&Scope`, spawn closures receive `&Scope` too, and
//! `scope` returns a `thread::Result`), implemented on top of
//! `std::thread::scope`, which has provided equivalent structured
//! concurrency since Rust 1.63.

pub mod thread {
    use std::marker::PhantomData;
    use std::thread as std_thread;

    /// Scope handle passed to `scope` and to every spawned closure.
    ///
    /// Stores the address of the underlying `std::thread::Scope` so the
    /// handle stays `Send` and can be re-materialized inside spawned
    /// threads; the address is only dereferenced while the scope is alive.
    pub struct Scope<'env> {
        addr: usize,
        _marker: PhantomData<fn(&'env ()) -> &'env ()>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns `Err` with the panic payload if the thread panicked.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'env> Scope<'env> {
        /// Spawns a scoped thread; the closure receives this scope so it can
        /// spawn further work, matching crossbeam's signature.
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let addr = self.addr;
            // SAFETY: `addr` was taken from a live `std::thread::Scope`
            // reference in `scope()`, and `'scope` here is bounded by the
            // borrow of `self`, which cannot outlive the `scope()` call
            // that owns the underlying scope.
            let std_scope: &'scope std_thread::Scope<'scope, 'env> =
                unsafe { &*(addr as *const std_thread::Scope<'scope, 'env>) };
            let handle = std_scope.spawn(move || {
                let scope = Scope {
                    addr,
                    _marker: PhantomData,
                };
                f(&scope)
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing environment; all threads are joined before returning.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if `f` or an unjoined spawned
    /// thread panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| {
                let scope = Scope {
                    addr: std::ptr::from_ref(s) as usize,
                    _marker: PhantomData,
                };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panics_surface_as_errors() {
        let res = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(res);
    }
}
