//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Content`] tree as JSON text. Floats
//! print through Rust's shortest-round-trip `Display`, so output is
//! deterministic — the property the determinism tests byte-compare on.
//! Non-finite floats render as `null`, matching real serde_json.

use serde::{Content, Serialize};

pub use serde::Error;

/// A JSON value (the vendored serde's own content tree).
pub type Value = Content;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_content(), Some("  "), 0);
    Ok(out)
}

/// Serializes `value` into its [`Value`] tree.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_content())
}

fn write_value(out: &mut String, v: &Content, indent: Option<&str>, depth: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(n) => write_f64(out, *n),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Keep integral floats recognizably floating-point, like serde_json.
    if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{n:.1}"));
    } else {
        out.push_str(&n.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = Content::Map(vec![
            ("name".into(), Content::Str("q6".into())),
            ("secs".into(), Content::F64(1.25)),
            (
                "lines".into(),
                Content::Seq(vec![Content::U64(0), Content::U64(1)]),
            ),
        ]);
        assert_eq!(
            to_string(&v.clone()).unwrap(),
            r#"{"name":"q6","secs":1.25,"lines":[0,1]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"q6\""));
    }

    #[test]
    fn floats_are_deterministic_and_tagged() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }
}
