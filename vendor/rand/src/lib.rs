//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact surface the workspace's data generators use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension with `gen_range` over half-open / inclusive integer
//! and float ranges plus `gen_bool`. The generator is SplitMix64 — fully
//! deterministic across platforms, which is what the repro's byte-level
//! determinism tests rely on. Statistical quality is more than adequate
//! for synthetic workload generation; this is not a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: raw 32/64-bit draws.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a raw draw onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Returns the raw 64-bit generator state.
        ///
        /// Together with [`StdRng::from_state`] this lets a caller embed
        /// the generator inside plain-data structs (e.g. ones deriving
        /// `PartialEq`/`Serialize`) and rebuild it on demand without
        /// losing the position in the stream.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`StdRng::state`].
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): a full-period 64-bit
            // mixer with no weak seeds, so sequential workload seeds decorrelate.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0..13usize);
            assert!(v < 13);
            let w = rng.gen_range(1..=50);
            assert!((1..=50).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = StdRng::from_state(a.state());
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
